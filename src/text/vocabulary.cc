#include "text/vocabulary.h"

#include <cctype>

#include "util/io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace bootleg::text {

Vocabulary::Vocabulary() {
  AddToken("[PAD]");
  AddToken("[UNK]");
  AddToken("[SEP]");
  AddToken("[CLS]");
  BOOTLEG_CHECK_EQ(Id("[PAD]"), kPadId);
  BOOTLEG_CHECK_EQ(Id("[UNK]"), kUnkId);
  BOOTLEG_CHECK_EQ(Id("[SEP]"), kSepId);
  BOOTLEG_CHECK_EQ(Id("[CLS]"), kClsId);
}

int64_t Vocabulary::AddToken(const std::string& token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  const int64_t id = size();
  index_.emplace(token, id);
  tokens_.push_back(token);
  return id;
}

int64_t Vocabulary::Id(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnkId : it->second;
}

const std::string& Vocabulary::Token(int64_t id) const {
  BOOTLEG_CHECK(id >= 0 && id < size());
  return tokens_[static_cast<size_t>(id)];
}

void Vocabulary::BuildTypoIndex() {
  deletion_index_.clear();
  // Skip the four reserved specials — "[UNK]" must never be a typo target.
  for (int64_t id = 4; id < size(); ++id) {
    const std::string& tok = tokens_[static_cast<size_t>(id)];
    if (tok.size() < 3) continue;
    for (size_t i = 0; i < tok.size(); ++i) {
      std::string del = tok;
      del.erase(i, 1);
      auto it = deletion_index_.find(del);
      if (it == deletion_index_.end()) {
        deletion_index_.emplace(std::move(del), id);
      } else if (id < it->second) {
        it->second = id;  // smallest id wins: deterministic across rebuilds
      }
    }
  }
  typo_index_built_ = true;
}

int64_t Vocabulary::IdWithTypoFallback(const std::string& token) const {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;

  // Casing noise: the corpus is stored lower-cased.
  const std::string lower = util::ToLower(token);
  if (lower != token) {
    it = index_.find(lower);
    if (it != index_.end()) return it->second;
  }

  // Adjacent transpositions (swap edits).
  if (lower.size() >= 2) {
    std::string t = lower;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      std::swap(t[i], t[i + 1]);
      it = index_.find(t);
      if (it != index_.end()) return it->second;
      std::swap(t[i], t[i + 1]);
    }
  }

  // Insertion edits: deleting one char of the corrupted token recovers the
  // original. Pick the smallest matching id for determinism.
  if (lower.size() >= 3) {
    int64_t best = -1;
    for (size_t i = 0; i < lower.size(); ++i) {
      std::string del = lower;
      del.erase(i, 1);
      it = index_.find(del);
      if (it != index_.end() && it->second >= 4 &&
          (best < 0 || it->second < best)) {
        best = it->second;
      }
    }
    if (best >= 0) return best;
  }

  // Deletion (and, via shared deletions, substitution) edits through the
  // precomputed neighborhood.
  if (typo_index_built_ && lower.size() >= 2) {
    auto del_it = deletion_index_.find(lower);
    if (del_it != deletion_index_.end()) return del_it->second;
    int64_t best = -1;
    for (size_t i = 0; i < lower.size(); ++i) {
      std::string del = lower;
      del.erase(i, 1);
      del_it = deletion_index_.find(del);
      if (del_it != deletion_index_.end() &&
          (best < 0 || del_it->second < best)) {
        best = del_it->second;
      }
    }
    if (best >= 0) return best;
  }
  return kUnkId;
}

util::Status Vocabulary::Save(const std::string& path) const {
  util::AtomicFileWriter atomic(path);
  util::BinaryWriter w(atomic.temp_path());
  w.WriteU32(0xB0071EF0);
  w.WriteU64(tokens_.size());
  for (const std::string& t : tokens_) w.WriteString(t);
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

util::Status Vocabulary::Load(const std::string& path) {
  util::BinaryReader r(path);
  if (r.ReadU32() != 0xB0071EF0) {
    return util::Status::Corruption("bad vocabulary magic: " + path);
  }
  tokens_.clear();
  index_.clear();
  const uint64_t n = r.ReadU64();
  for (uint64_t i = 0; i < n && r.status().ok(); ++i) AddToken(r.ReadString());
  return r.status();
}

std::vector<std::string> Tokenize(const std::string& sentence) {
  std::vector<std::string> out;
  for (const std::string& raw : util::Split(sentence, " \t\n")) {
    std::string word = util::ToLower(raw);
    // Peel trailing punctuation into separate tokens.
    size_t end = word.size();
    while (end > 0) {
      const char c = word[end - 1];
      if (c == '.' || c == ',' || c == '?' || c == '!' || c == ';') {
        --end;
      } else {
        break;
      }
    }
    if (end > 0) out.push_back(word.substr(0, end));
    for (size_t i = end; i < word.size(); ++i) out.push_back(std::string(1, word[i]));
  }
  return out;
}

std::vector<int64_t> Encode(const Vocabulary& vocab,
                            const std::vector<std::string>& tokens) {
  std::vector<int64_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(vocab.Id(t));
  return ids;
}

}  // namespace bootleg::text

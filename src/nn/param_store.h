#ifndef BOOTLEG_NN_PARAM_STORE_H_
#define BOOTLEG_NN_PARAM_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/embedding.h"
#include "tensor/autograd.h"
#include "util/rng.h"
#include "util/status.h"

namespace bootleg::util {
class BinaryReader;
class BinaryWriter;
}  // namespace bootleg::util

namespace bootleg::nn {

/// Owns every learnable parameter of a model: dense parameters (weights,
/// biases, gains, the KG2Ent scalar w, the scoring vector v) as autograd
/// leaves, and embedding tables with sparse gradients. Layers register their
/// parameters here at construction; the optimizer and checkpointing code
/// iterate the store.
class ParameterStore {
 public:
  ParameterStore() = default;
  ParameterStore(const ParameterStore&) = delete;
  ParameterStore& operator=(const ParameterStore&) = delete;

  /// Registers a dense parameter initialized to `init`. Names must be unique.
  tensor::Var CreateParam(const std::string& name, tensor::Tensor init);

  /// Registers an embedding table. Names must be unique.
  Embedding* CreateEmbedding(const std::string& name, int64_t rows, int64_t cols,
                             util::Rng* rng, float stddev = 0.02f);

  /// Marks a dense parameter as frozen: the optimizer skips it. Used for the
  /// "freeze the BERT encoder stack" setting of the paper.
  void Freeze(const std::string& prefix);
  bool IsFrozen(const std::string& name) const;

  tensor::Var GetParam(const std::string& name) const;
  Embedding* GetEmbedding(const std::string& name) const;
  bool HasParam(const std::string& name) const { return params_.count(name) > 0; }

  const std::vector<std::string>& param_names() const { return param_order_; }
  const std::vector<std::string>& embedding_names() const { return embedding_order_; }

  void ZeroGrad();

  /// Reduces per-worker gradient scopes into the shared gradient storage
  /// (dense leaf .grad tensors and embedding sparse-grad maps) in scope index
  /// order. Index order equals worker order in the data-parallel trainer, so
  /// the accumulated gradients are independent of thread scheduling. Call
  /// after the workers filling the scopes have joined and before Adam::Step.
  static void ReduceGradScopes(std::vector<tensor::GradScope>* scopes);

  /// Parameter accounting used by the Table 10 model-size bench.
  int64_t DenseParamCount() const;
  int64_t EmbeddingParamCount() const;

  /// Checkpointing: saves/loads every parameter value by name.
  ///
  /// Save writes the v1 snapshot format (versioned header, per-section CRC32
  /// checksums, end-of-file footer) through an atomic temp-file + rename, so
  /// `path` always holds either the previous or the new complete snapshot.
  /// Load verifies checksums and rejects truncation, bit flips, and trailing
  /// garbage with Status::Corruption — never a crash or oversized allocation
  /// — and still reads legacy v0 (unchecksummed) files. On a non-OK Load the
  /// store's values are unspecified; reload or reinitialize before use.
  util::Status Save(const std::string& path) const;
  util::Status Load(const std::string& path);

  /// Streaming variants used to embed the store in a larger snapshot (the
  /// training checkpoint): same format, minus the file-level footer.
  void SaveTo(util::BinaryWriter* w) const;
  util::Status LoadFrom(util::BinaryReader* r);

 private:
  std::unordered_map<std::string, tensor::Var> params_;
  std::vector<std::string> param_order_;
  std::unordered_map<std::string, std::unique_ptr<Embedding>> embeddings_;
  std::vector<std::string> embedding_order_;
  std::vector<std::string> frozen_prefixes_;
};

}  // namespace bootleg::nn

#endif  // BOOTLEG_NN_PARAM_STORE_H_

#ifndef BOOTLEG_NN_OPTIMIZER_H_
#define BOOTLEG_NN_OPTIMIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "nn/param_store.h"
#include "tensor/autograd.h"
#include "util/io.h"

namespace bootleg::nn {

/// Adam optimizer (Kingma & Ba) over a ParameterStore. Dense parameters get
/// standard Adam; embedding tables get lazy/sparse Adam that only updates
/// rows touched this step — the same treatment the paper needs for its
/// 1.36B-parameter entity tables.
class Adam {
 public:
  struct Options {
    float lr = 1e-3f;
    float beta1 = 0.9f;
    float beta2 = 0.999f;
    float eps = 1e-8f;
    /// Gradient clipping by global norm over dense parameters; 0 disables.
    float clip_norm = 5.0f;
  };

  Adam(ParameterStore* store, Options options);

  /// Applies one update from the gradients currently accumulated in the
  /// store, then clears them.
  void Step();

  void set_lr(float lr) { options_.lr = lr; }
  float lr() const { return options_.lr; }
  int64_t step_count() const { return step_; }

  /// Serializes the full optimizer state — step count plus first/second
  /// moments of every slot, keyed by parameter name — as a checksummed
  /// section of a training checkpoint. LoadState validates names and shapes
  /// against this optimizer's slots (which must have been constructed over
  /// the same store layout) and returns Corruption on any mismatch.
  void SaveState(util::BinaryWriter* w) const;
  util::Status LoadState(util::BinaryReader* r);

 private:
  struct DenseSlot {
    std::string name;
    tensor::Var param;
    tensor::Tensor m;
    tensor::Tensor v;
  };
  struct SparseSlot {
    std::string name;
    Embedding* embedding;
    tensor::Tensor m;
    tensor::Tensor v;
  };

  ParameterStore* store_;
  Options options_;
  int64_t step_ = 0;
  std::vector<DenseSlot> dense_;
  std::vector<SparseSlot> sparse_;
};

/// Plain SGD, used in tests as a reference optimizer.
class Sgd {
 public:
  Sgd(ParameterStore* store, float lr);

  void Step();

  void set_lr(float lr) { lr_ = lr; }

 private:
  ParameterStore* store_;
  float lr_;
  std::vector<tensor::Var> dense_;
  std::vector<Embedding*> sparse_;
};

}  // namespace bootleg::nn

#endif  // BOOTLEG_NN_OPTIMIZER_H_

#include "nn/embedding.h"

#include "nn/init.h"

namespace bootleg::nn {

using tensor::Tensor;
using tensor::Var;

Embedding::Embedding(std::string name, int64_t rows, int64_t cols,
                     util::Rng* rng, float stddev)
    : name_(std::move(name)), table_(EmbeddingInit(rows, cols, rng, stddev)) {}

Var Embedding::Lookup(const std::vector<int64_t>& ids) {
  Tensor out = tensor::GatherRows(table_, ids);
  const int64_t cols = table_.size(1);
  auto node = std::make_shared<tensor::internal_autograd::Node>();
  node->value = std::move(out);
  node->requires_grad = true;
  // Leaf-like op: no tape inputs, backward scatters into this table's sparse
  // gradient map — or, under an active GradScope, into that worker's private
  // buffer keyed by the map. `this` must outlive the tape (documented in the
  // header).
  node->backward = [this, ids, cols](tensor::internal_autograd::Node& n) {
    tensor::SparseRowGrads* sink = &sparse_grads_;
    if (tensor::GradScope* scope = tensor::GradScope::Current()) {
      sink = scope->SparseGrad(sink);
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      auto [it, inserted] =
          sink->try_emplace(ids[i], static_cast<size_t>(cols), 0.0f);
      float* dst = it->second.data();
      const float* src = n.grad.data() + static_cast<int64_t>(i) * cols;
      for (int64_t j = 0; j < cols; ++j) dst[j] += src[j];
    }
  };
  return Var::FromNode(std::move(node));
}

void Embedding::InitConstantRows(const Tensor& row) {
  BOOTLEG_CHECK_EQ(row.numel(), cols());
  for (int64_t r = 0; r < rows(); ++r) {
    float* dst = table_.data() + r * cols();
    for (int64_t j = 0; j < cols(); ++j) dst[j] = row.at(j);
  }
}

}  // namespace bootleg::nn

#include "nn/optimizer.h"

#include <cmath>

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace bootleg::nn {

using tensor::Tensor;
using tensor::Var;

Adam::Adam(ParameterStore* store, Options options)
    : store_(store), options_(options) {
  for (const std::string& name : store->param_names()) {
    if (store->IsFrozen(name)) continue;
    Var p = store->GetParam(name);
    dense_.push_back(
        {name, p, Tensor(p.value().shape()), Tensor(p.value().shape())});
  }
  for (const std::string& name : store->embedding_names()) {
    if (store->IsFrozen(name)) continue;
    Embedding* e = store->GetEmbedding(name);
    sparse_.push_back({name, e, Tensor({e->rows(), e->cols()}),
                       Tensor({e->rows(), e->cols()})});
  }
}

namespace {
constexpr uint32_t kAdamStateMagic = 0xB007ADA1;
constexpr uint32_t kAdamStateVersion = 1;
}  // namespace

void Adam::SaveState(util::BinaryWriter* w) const {
  w->WriteU32(kAdamStateMagic);
  w->WriteU32(kAdamStateVersion);
  w->BeginSection();
  w->WriteI64(step_);
  w->WriteU64(dense_.size());
  for (const DenseSlot& slot : dense_) {
    w->WriteString(slot.name);
    w->WriteFloatVector(slot.m.vec());
    w->WriteFloatVector(slot.v.vec());
  }
  w->WriteU64(sparse_.size());
  for (const SparseSlot& slot : sparse_) {
    w->WriteString(slot.name);
    w->WriteFloatVector(slot.m.vec());
    w->WriteFloatVector(slot.v.vec());
  }
  w->EndSection();
}

util::Status Adam::LoadState(util::BinaryReader* r) {
  if (r->ReadU32() != kAdamStateMagic) {
    if (!r->status().ok()) return r->status();
    return util::Status::Corruption("bad optimizer state magic");
  }
  const uint32_t version = r->ReadU32();
  if (r->status().ok() && version != kAdamStateVersion) {
    return util::Status::Corruption("unsupported optimizer state version");
  }
  r->BeginSection();
  const int64_t step = r->ReadI64();
  if (r->status().ok() && step < 0) {
    return util::Status::Corruption("negative optimizer step count");
  }
  const uint64_t nd = r->ReadU64();
  if (r->status().ok() && nd != dense_.size()) {
    return util::Status::Corruption("optimizer dense slot count mismatch");
  }
  for (uint64_t i = 0; i < nd && r->status().ok(); ++i) {
    DenseSlot& slot = dense_[i];
    const std::string name = r->ReadString();
    std::vector<float> m = r->ReadFloatVector();
    std::vector<float> v = r->ReadFloatVector();
    if (!r->status().ok()) break;
    if (name != slot.name ||
        m.size() != static_cast<size_t>(slot.m.numel()) ||
        v.size() != static_cast<size_t>(slot.v.numel())) {
      return util::Status::Corruption("optimizer slot mismatch: " + name);
    }
    slot.m.vec() = std::move(m);
    slot.v.vec() = std::move(v);
  }
  const uint64_t ns = r->ReadU64();
  if (r->status().ok() && ns != sparse_.size()) {
    return util::Status::Corruption("optimizer sparse slot count mismatch");
  }
  for (uint64_t i = 0; i < ns && r->status().ok(); ++i) {
    SparseSlot& slot = sparse_[i];
    const std::string name = r->ReadString();
    std::vector<float> m = r->ReadFloatVector();
    std::vector<float> v = r->ReadFloatVector();
    if (!r->status().ok()) break;
    if (name != slot.name ||
        m.size() != static_cast<size_t>(slot.m.numel()) ||
        v.size() != static_cast<size_t>(slot.v.numel())) {
      return util::Status::Corruption("optimizer slot mismatch: " + name);
    }
    slot.m.vec() = std::move(m);
    slot.v.vec() = std::move(v);
  }
  r->EndSection();
  BOOTLEG_RETURN_IF_ERROR(r->status());
  step_ = step;
  return util::Status::OK();
}

void Adam::Step() {
  OBS_SPAN("nn.adam.step");
  ++step_;
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  const float lr = options_.lr;

  // Global-norm gradient clipping over dense parameters. Embedding gradients
  // are left unclipped (each row receives few contributions per step).
  float scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    // Lane accumulators: a single running double is a serial FP chain the
    // compiler cannot reassociate; eight independent lanes vectorize. The
    // lane assignment and fold order are fixed, so the norm is deterministic.
    double lanes[8] = {0.0};
    for (const DenseSlot& slot : dense_) {
      const Tensor& g = slot.param.grad();
      if (g.empty()) continue;
      const float* gd = g.data();
      const int64_t n = g.numel();
      int64_t i = 0;
      for (; i + 8 <= n; i += 8) {
        for (int64_t l = 0; l < 8; ++l) {
          const double x = static_cast<double>(gd[i + l]);
          lanes[l] += x * x;
        }
      }
      for (; i < n; ++i) {
        const double x = static_cast<double>(gd[i]);
        lanes[0] += x * x;
      }
    }
    double sq = 0.0;
    for (int64_t l = 0; l < 8; ++l) sq += lanes[l];
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > options_.clip_norm) scale = options_.clip_norm / norm;
  }

  const float beta1 = options_.beta1;
  const float beta2 = options_.beta2;
  const float eps = options_.eps;
  for (DenseSlot& slot : dense_) {
    Var p = slot.param;
    const Tensor& g = p.grad();
    if (g.empty()) continue;
    // Raw pointers keep the loop branch-free (element access via at() pays a
    // bounds check per read) and let it vectorize; per-element updates are
    // independent, so large parameters fan out across the pool.
    const float* gd = g.data();
    float* value = p.mutable_value().data();
    float* m = slot.m.data();
    float* v = slot.v.data();
    const auto update = [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        const float gi = gd[i] * scale;
        const float mi = beta1 * m[i] + (1.0f - beta1) * gi;
        const float vi = beta2 * v[i] + (1.0f - beta2) * gi * gi;
        m[i] = mi;
        v[i] = vi;
        value[i] -= lr * (mi / bc1) / (std::sqrt(vi / bc2) + eps);
      }
    };
    const int64_t n = p.value().numel();
    util::ThreadPool* pool = util::ThreadPool::Global();
    if (pool->WouldParallelize(n, 1 << 13)) {
      pool->ParallelFor(0, n, 1 << 13, update);
    } else {
      update(0, n);
    }
    p.ZeroGrad();
  }

  for (SparseSlot& slot : sparse_) {
    Embedding* e = slot.embedding;
    const int64_t cols = e->cols();
    for (auto& [row, grad] : e->sparse_grads()) {
      float* value = e->table().data() + row * cols;
      float* m = slot.m.data() + row * cols;
      float* v = slot.v.data() + row * cols;
      const float* gj = grad.data();
      for (int64_t j = 0; j < cols; ++j) {
        const float mi = beta1 * m[j] + (1.0f - beta1) * gj[j];
        const float vi = beta2 * v[j] + (1.0f - beta2) * gj[j] * gj[j];
        m[j] = mi;
        v[j] = vi;
        value[j] -= lr * (mi / bc1) / (std::sqrt(vi / bc2) + eps);
      }
    }
    e->ZeroGrad();
  }
}

Sgd::Sgd(ParameterStore* store, float lr) : store_(store), lr_(lr) {
  for (const std::string& name : store->param_names()) {
    if (!store->IsFrozen(name)) dense_.push_back(store->GetParam(name));
  }
  for (const std::string& name : store->embedding_names()) {
    if (!store->IsFrozen(name)) sparse_.push_back(store->GetEmbedding(name));
  }
}

void Sgd::Step() {
  for (Var& p : dense_) {
    const Tensor& g = p.grad();
    if (g.empty()) continue;
    p.mutable_value().Axpy(-lr_, g);
    p.ZeroGrad();
  }
  for (Embedding* e : sparse_) {
    const int64_t cols = e->cols();
    for (auto& [row, grad] : e->sparse_grads()) {
      float* value = e->table().data() + row * cols;
      for (int64_t j = 0; j < cols; ++j) {
        value[j] -= lr_ * grad[static_cast<size_t>(j)];
      }
    }
    e->ZeroGrad();
  }
}

}  // namespace bootleg::nn

#include "nn/optimizer.h"

#include <cmath>

namespace bootleg::nn {

using tensor::Tensor;
using tensor::Var;

Adam::Adam(ParameterStore* store, Options options)
    : store_(store), options_(options) {
  for (const std::string& name : store->param_names()) {
    if (store->IsFrozen(name)) continue;
    Var p = store->GetParam(name);
    dense_.push_back({p, Tensor(p.value().shape()), Tensor(p.value().shape())});
  }
  for (const std::string& name : store->embedding_names()) {
    if (store->IsFrozen(name)) continue;
    Embedding* e = store->GetEmbedding(name);
    sparse_.push_back({e, Tensor({e->rows(), e->cols()}), Tensor({e->rows(), e->cols()})});
  }
}

void Adam::Step() {
  ++step_;
  const float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  const float lr = options_.lr;

  // Global-norm gradient clipping over dense parameters. Embedding gradients
  // are left unclipped (each row receives few contributions per step).
  float scale = 1.0f;
  if (options_.clip_norm > 0.0f) {
    double sq = 0.0;
    for (const DenseSlot& slot : dense_) {
      const Tensor& g = slot.param.grad();
      if (g.empty()) continue;
      for (float x : g.vec()) sq += static_cast<double>(x) * x;
    }
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > options_.clip_norm) scale = options_.clip_norm / norm;
  }

  for (DenseSlot& slot : dense_) {
    Var p = slot.param;
    const Tensor& g = p.grad();
    if (g.empty()) continue;
    Tensor& value = p.mutable_value();
    for (int64_t i = 0; i < value.numel(); ++i) {
      const float gi = g.at(i) * scale;
      float& m = slot.m.at(i);
      float& v = slot.v.at(i);
      m = options_.beta1 * m + (1.0f - options_.beta1) * gi;
      v = options_.beta2 * v + (1.0f - options_.beta2) * gi * gi;
      const float mhat = m / bc1;
      const float vhat = v / bc2;
      value.at(i) -= lr * mhat / (std::sqrt(vhat) + options_.eps);
    }
    p.ZeroGrad();
  }

  for (SparseSlot& slot : sparse_) {
    Embedding* e = slot.embedding;
    const int64_t cols = e->cols();
    for (auto& [row, grad] : e->sparse_grads()) {
      float* value = e->table().data() + row * cols;
      float* m = slot.m.data() + row * cols;
      float* v = slot.v.data() + row * cols;
      for (int64_t j = 0; j < cols; ++j) {
        const float gj = grad[static_cast<size_t>(j)];
        m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * gj;
        v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * gj * gj;
        const float mhat = m[j] / bc1;
        const float vhat = v[j] / bc2;
        value[j] -= lr * mhat / (std::sqrt(vhat) + options_.eps);
      }
    }
    e->ZeroGrad();
  }
}

Sgd::Sgd(ParameterStore* store, float lr) : store_(store), lr_(lr) {
  for (const std::string& name : store->param_names()) {
    if (!store->IsFrozen(name)) dense_.push_back(store->GetParam(name));
  }
  for (const std::string& name : store->embedding_names()) {
    if (!store->IsFrozen(name)) sparse_.push_back(store->GetEmbedding(name));
  }
}

void Sgd::Step() {
  for (Var& p : dense_) {
    const Tensor& g = p.grad();
    if (g.empty()) continue;
    p.mutable_value().Axpy(-lr_, g);
    p.ZeroGrad();
  }
  for (Embedding* e : sparse_) {
    const int64_t cols = e->cols();
    for (auto& [row, grad] : e->sparse_grads()) {
      float* value = e->table().data() + row * cols;
      for (int64_t j = 0; j < cols; ++j) {
        value[j] -= lr_ * grad[static_cast<size_t>(j)];
      }
    }
    e->ZeroGrad();
  }
}

}  // namespace bootleg::nn

#ifndef BOOTLEG_NN_LAYERS_H_
#define BOOTLEG_NN_LAYERS_H_

#include <string>
#include <vector>

#include "backend/backend.h"
#include "nn/param_store.h"
#include "tensor/autograd.h"
#include "util/rng.h"

namespace bootleg::nn {

/// Fully-connected layer y = xW + b over 2-D inputs [n, in].
class Linear {
 public:
  Linear(ParameterStore* store, const std::string& prefix, int64_t in,
         int64_t out, util::Rng* rng);

  tensor::Var Forward(const tensor::Var& x) const;

  /// Forward-only fast path: same kernels as Forward, no tape allocation.
  /// With a backend, routes through Backend::LinearForward (the reference
  /// backend reproduces this function's kernels exactly); nullptr means the
  /// process-wide reference backend.
  tensor::Tensor ForwardValue(const tensor::Tensor& x,
                              const backend::Backend* be = nullptr) const;

  /// Registers this layer's weight/bias under `name` for Backend::LoadModel.
  /// The appended pointers stay owned by the parameter store.
  void AppendFrozenWeights(const std::string& name,
                           std::vector<backend::FrozenWeight>* out) const;

  int64_t in_dim() const { return in_; }
  int64_t out_dim() const { return out_; }

 private:
  int64_t in_;
  int64_t out_;
  tensor::Var weight_;  // [in, out]
  tensor::Var bias_;    // [out]
};

/// Row-wise layer normalization with learned gain and bias.
class LayerNormLayer {
 public:
  LayerNormLayer(ParameterStore* store, const std::string& prefix, int64_t dim);

  tensor::Var Forward(const tensor::Var& x) const {
    return tensor::LayerNorm(x, gamma_, beta_);
  }

  tensor::Tensor ForwardValue(const tensor::Tensor& x) const {
    return tensor::LayerNormRows(x, gamma_.value(), beta_.value());
  }

 private:
  tensor::Var gamma_;
  tensor::Var beta_;
};

/// Inverted dropout: scales surviving activations by 1/(1-p) at train time,
/// identity at eval time.
class Dropout {
 public:
  explicit Dropout(float p) : p_(p) { BOOTLEG_CHECK(p >= 0.0f && p < 1.0f); }

  tensor::Var Apply(const tensor::Var& x, util::Rng* rng, bool train) const;

  float p() const { return p_; }

 private:
  float p_;
};

/// Position-wise feed-forward block: Linear → GELU → Linear.
class FeedForward {
 public:
  FeedForward(ParameterStore* store, const std::string& prefix, int64_t dim,
              int64_t inner_dim, util::Rng* rng);

  tensor::Var Forward(const tensor::Var& x, util::Rng* rng, bool train) const;

  /// Eval-mode forward without tape (dropout is the identity at eval time).
  tensor::Tensor ForwardValue(const tensor::Tensor& x,
                              const backend::Backend* be = nullptr) const;

  /// Registers fc1/fc2 as `name + ".fc1"` / `".fc2"` (see Linear).
  void AppendFrozenWeights(const std::string& name,
                           std::vector<backend::FrozenWeight>* out) const;

 private:
  Linear fc1_;
  Linear fc2_;
  Dropout dropout_;
};

/// Multi-layer perceptron with ReLU activations between layers. Used to fuse
/// [u_e, t_e, r_e] into the candidate representation (paper Sec. 3.1) and for
/// the mention type-prediction head (Appendix A).
class Mlp {
 public:
  Mlp(ParameterStore* store, const std::string& prefix,
      const std::vector<int64_t>& dims, util::Rng* rng);

  tensor::Var Forward(const tensor::Var& x, util::Rng* rng, bool train) const;

  /// Eval-mode forward without tape (dropout is the identity at eval time).
  tensor::Tensor ForwardValue(const tensor::Tensor& x,
                              const backend::Backend* be = nullptr) const;

  /// Registers every layer as `name + ".l<i>"` (see Linear).
  void AppendFrozenWeights(const std::string& name,
                           std::vector<backend::FrozenWeight>* out) const;

 private:
  std::vector<Linear> layers_;
  Dropout dropout_;
};

/// Returns the sinusoidal positional-encoding table [max_len, dim] of
/// Vaswani et al., used for both word positions and the mention position
/// feature added to candidate representations (Appendix A).
tensor::Tensor SinusoidalPositionTable(int64_t max_len, int64_t dim);

}  // namespace bootleg::nn

#endif  // BOOTLEG_NN_LAYERS_H_

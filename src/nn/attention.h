#ifndef BOOTLEG_NN_ATTENTION_H_
#define BOOTLEG_NN_ATTENTION_H_

#include <string>

#include "nn/layers.h"
#include "nn/param_store.h"
#include "tensor/autograd.h"
#include "util/rng.h"

namespace bootleg::nn {

/// One independent attention group inside batched query/key tensors: query
/// rows [q_offset, q_offset + q_rows) attend only over key rows [k_offset,
/// k_offset + k_rows). The serving engine packs many sentences into one
/// tensor and describes each sentence with one segment, so the projection
/// matmuls run batched while the attention cores stay per-sentence.
struct AttentionSegment {
  int64_t q_offset = 0;
  int64_t q_rows = 0;
  int64_t k_offset = 0;
  int64_t k_rows = 0;
};

/// Standard multi-head attention (Vaswani et al.). Queries attend over
/// keys/values; pass the same tensor for self-attention. Shapes are 2-D:
/// queries [r, hidden], keys [s, hidden] → output [r, hidden].
class MultiHeadAttention {
 public:
  MultiHeadAttention(ParameterStore* store, const std::string& prefix,
                     int64_t hidden, int64_t num_heads, util::Rng* rng);

  tensor::Var Attend(const tensor::Var& queries, const tensor::Var& keys) const;

  /// Forward-only fast path over independent segments. Every segment's output
  /// rows are bit-identical to Attend() on that segment's rows alone: the
  /// q/k/v/o projections are row-wise (batching cannot change them) and the
  /// score/softmax/value cores run per segment on the same kernels.
  tensor::Tensor AttendSegmentsValue(
      const tensor::Tensor& queries, const tensor::Tensor& keys,
      const std::vector<AttentionSegment>& segments,
      const backend::Backend* be = nullptr) const;

  /// Registers wq/wk/wv/wo as `name + ".wq"` etc. (see Linear).
  void AppendFrozenWeights(const std::string& name,
                           std::vector<backend::FrozenWeight>* out) const;

  int64_t num_heads() const { return num_heads_; }

 private:
  int64_t hidden_;
  int64_t num_heads_;
  int64_t head_dim_;
  Linear wq_;
  Linear wk_;
  Linear wv_;
  Linear wo_;
};

/// Transformer-style attention block: MHA with skip connection and layer
/// norm, followed by a feed-forward sublayer with skip connection and layer
/// norm. This is the "MHA ... with a feed-forward layer and skip
/// connections" building block of Bootleg's Phrase2Ent and Ent2Ent modules.
class AttentionBlock {
 public:
  AttentionBlock(ParameterStore* store, const std::string& prefix,
                 int64_t hidden, int64_t num_heads, int64_t ff_inner,
                 util::Rng* rng);

  /// Cross-attention form (Phrase2Ent): queries over external keys.
  tensor::Var Forward(const tensor::Var& queries, const tensor::Var& keys,
                      util::Rng* rng, bool train) const;

  /// Self-attention form (Ent2Ent).
  tensor::Var Forward(const tensor::Var& x, util::Rng* rng, bool train) const {
    return Forward(x, x, rng, train);
  }

  /// Forward-only eval-mode fast path over independent segments (see
  /// MultiHeadAttention::AttendSegmentsValue). Dropout is the identity at
  /// eval time, so per-segment rows match Forward(..., train=false) exactly.
  tensor::Tensor ForwardSegmentsValue(
      const tensor::Tensor& queries, const tensor::Tensor& keys,
      const std::vector<AttentionSegment>& segments,
      const backend::Backend* be = nullptr) const;

  /// Registers the MHA projections and feed-forward layers (see Linear).
  void AppendFrozenWeights(const std::string& name,
                           std::vector<backend::FrozenWeight>* out) const;

 private:
  MultiHeadAttention mha_;
  LayerNormLayer ln1_;
  FeedForward ff_;
  LayerNormLayer ln2_;
  Dropout dropout_;
};

/// Additive (Bahdanau) attention pooling a set of vectors [t, dim] into one
/// [1, dim]. Bootleg uses it to merge an entity's multiple type embeddings
/// and multiple relation embeddings (Sec. 3.1).
class AdditiveAttention {
 public:
  AdditiveAttention(ParameterStore* store, const std::string& prefix,
                    int64_t dim, int64_t attn_dim, util::Rng* rng);

  tensor::Var Pool(const tensor::Var& items) const;

  /// Forward-only fast path, bit-identical to Pool (same kernels, no tape).
  tensor::Tensor PoolValue(const tensor::Tensor& items) const;

 private:
  Linear proj_;
  tensor::Var score_vec_;  // [attn_dim, 1]
};

}  // namespace bootleg::nn

#endif  // BOOTLEG_NN_ATTENTION_H_

#ifndef BOOTLEG_NN_EMBEDDING_H_
#define BOOTLEG_NN_EMBEDDING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "tensor/autograd.h"
#include "util/rng.h"

namespace bootleg::nn {

/// Embedding table with sparse gradient accumulation. Lookups build autograd
/// ops whose backward scatters row gradients into `sparse_grads()` instead of
/// materializing a dense table gradient — essential for the (entity-count ×
/// dim) tables the paper trains (1.36B of its 1.37B parameters live in
/// embeddings; ours are smaller but the asymmetry is the same).
///
/// The Embedding must outlive every tape node produced by Lookup().
class Embedding {
 public:
  Embedding(std::string name, int64_t rows, int64_t cols, util::Rng* rng,
            float stddev = 0.02f);

  /// Differentiable row gather; ids index the table.
  tensor::Var Lookup(const std::vector<int64_t>& ids);

  /// Non-differentiable gather (inference paths).
  tensor::Tensor LookupValue(const std::vector<int64_t>& ids) const {
    return tensor::GatherRows(table_, ids);
  }

  /// Re-initializes every row to the same vector. The paper initializes all
  /// entity embeddings identically so unseen entities do not differ by
  /// initialization noise (Appendix B).
  void InitConstantRows(const tensor::Tensor& row);

  const std::string& name() const { return name_; }
  int64_t rows() const { return table_.size(0); }
  int64_t cols() const { return table_.size(1); }
  tensor::Tensor& table() { return table_; }
  const tensor::Tensor& table() const { return table_; }

  /// Frees the table storage, keeping the column count but zero rows. Used
  /// by serving when rows are read from a memory-mapped store instead — the
  /// table would otherwise duplicate the store's resident bytes. Lookup
  /// after release is undefined; training paths must never call this.
  void ReleaseTable() { table_ = tensor::Tensor({0, table_.size(1)}); }

  /// Row-id → accumulated gradient row, cleared by ZeroGrad().
  std::unordered_map<int64_t, std::vector<float>>& sparse_grads() {
    return sparse_grads_;
  }

  void ZeroGrad() { sparse_grads_.clear(); }

 private:
  std::string name_;
  tensor::Tensor table_;
  std::unordered_map<int64_t, std::vector<float>> sparse_grads_;
};

}  // namespace bootleg::nn

#endif  // BOOTLEG_NN_EMBEDDING_H_

#ifndef BOOTLEG_NN_INIT_H_
#define BOOTLEG_NN_INIT_H_

#include <cmath>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace bootleg::nn {

/// Xavier/Glorot uniform initialization for a [fan_in, fan_out] weight.
inline tensor::Tensor XavierUniform(int64_t fan_in, int64_t fan_out,
                                    util::Rng* rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return tensor::Tensor::RandUniform({fan_in, fan_out}, rng, limit);
}

/// Scaled normal initialization for embedding tables.
inline tensor::Tensor EmbeddingInit(int64_t rows, int64_t cols, util::Rng* rng,
                                    float stddev = 0.02f) {
  return tensor::Tensor::Randn({rows, cols}, rng, stddev);
}

}  // namespace bootleg::nn

#endif  // BOOTLEG_NN_INIT_H_

#include "nn/param_store.h"

#include "util/io.h"
#include "util/string_util.h"

namespace bootleg::nn {

using tensor::Tensor;
using tensor::Var;

Var ParameterStore::CreateParam(const std::string& name, Tensor init) {
  BOOTLEG_CHECK_MSG(params_.find(name) == params_.end(),
                    "duplicate parameter name: " + name);
  Var v = Var::Leaf(std::move(init), /*requires_grad=*/true);
  params_.emplace(name, v);
  param_order_.push_back(name);
  return v;
}

Embedding* ParameterStore::CreateEmbedding(const std::string& name, int64_t rows,
                                           int64_t cols, util::Rng* rng,
                                           float stddev) {
  BOOTLEG_CHECK_MSG(embeddings_.find(name) == embeddings_.end(),
                    "duplicate embedding name: " + name);
  auto emb = std::make_unique<Embedding>(name, rows, cols, rng, stddev);
  Embedding* ptr = emb.get();
  embeddings_.emplace(name, std::move(emb));
  embedding_order_.push_back(name);
  return ptr;
}

void ParameterStore::Freeze(const std::string& prefix) {
  frozen_prefixes_.push_back(prefix);
}

bool ParameterStore::IsFrozen(const std::string& name) const {
  for (const std::string& p : frozen_prefixes_) {
    if (util::StartsWith(name, p)) return true;
  }
  return false;
}

Var ParameterStore::GetParam(const std::string& name) const {
  auto it = params_.find(name);
  BOOTLEG_CHECK_MSG(it != params_.end(), "no such parameter: " + name);
  return it->second;
}

Embedding* ParameterStore::GetEmbedding(const std::string& name) const {
  auto it = embeddings_.find(name);
  BOOTLEG_CHECK_MSG(it != embeddings_.end(), "no such embedding: " + name);
  return it->second.get();
}

void ParameterStore::ZeroGrad() {
  for (auto& [name, v] : params_) {
    Var copy = v;
    copy.ZeroGrad();
  }
  for (auto& [name, e] : embeddings_) e->ZeroGrad();
}

void ParameterStore::ReduceGradScopes(std::vector<tensor::GradScope>* scopes) {
  for (tensor::GradScope& scope : *scopes) scope.ReduceInto();
}

int64_t ParameterStore::DenseParamCount() const {
  int64_t n = 0;
  for (const auto& [name, v] : params_) n += v.value().numel();
  return n;
}

int64_t ParameterStore::EmbeddingParamCount() const {
  int64_t n = 0;
  for (const auto& [name, e] : embeddings_) n += e->table().numel();
  return n;
}

namespace {

// Snapshot format magics. v0 is the legacy unchecksummed layout; v1 adds the
// version word, per-section CRC32s, and (at file level) a footer.
constexpr uint32_t kMagicV0 = 0xB0071E60;
constexpr uint32_t kMagicV1 = 0xB0071E61;
constexpr uint32_t kFormatVersion = 1;

/// True iff `shape` is non-negative and its element count equals `n`,
/// computed without integer overflow. Corrupt shape vectors must be rejected
/// before Tensor's CHECK-based constructor can abort on them.
bool ShapeMatchesCount(const std::vector<int64_t>& shape, uint64_t n) {
  uint64_t prod = 1;
  for (int64_t d : shape) {
    if (d < 0) return false;
    const auto ud = static_cast<uint64_t>(d);
    if (ud != 0 && prod > n / ud) return false;  // prod * ud would exceed n
    prod *= ud;
  }
  return prod == n;
}

}  // namespace

void ParameterStore::SaveTo(util::BinaryWriter* w) const {
  w->WriteU32(kMagicV1);
  w->WriteU32(kFormatVersion);
  w->BeginSection();
  w->WriteU64(param_order_.size());
  for (const std::string& name : param_order_) {
    const Var& v = params_.at(name);
    w->WriteString(name);
    std::vector<int64_t> shape = v.value().shape();
    w->WriteI64Vector(shape);
    w->WriteFloatVector(v.value().vec());
  }
  w->EndSection();
  w->BeginSection();
  w->WriteU64(embedding_order_.size());
  for (const std::string& name : embedding_order_) {
    const Embedding* e = embeddings_.at(name).get();
    w->WriteString(name);
    w->WriteI64(e->rows());
    w->WriteI64(e->cols());
    w->WriteFloatVector(e->table().vec());
  }
  w->EndSection();
}

util::Status ParameterStore::LoadFrom(util::BinaryReader* r) {
  const uint32_t magic = r->ReadU32();
  const bool legacy = magic == kMagicV0;
  if (!legacy) {
    if (magic != kMagicV1) {
      return util::Status::Corruption("bad checkpoint magic");
    }
    const uint32_t version = r->ReadU32();
    if (r->status().ok() && version != kFormatVersion) {
      return util::Status::Corruption("unsupported checkpoint version");
    }
  }
  if (!legacy) r->BeginSection();
  const uint64_t np = r->ReadU64();
  for (uint64_t i = 0; i < np && r->status().ok(); ++i) {
    const std::string name = r->ReadString();
    std::vector<int64_t> shape = r->ReadI64Vector();
    std::vector<float> data = r->ReadFloatVector();
    if (!r->status().ok()) break;
    auto it = params_.find(name);
    if (it == params_.end()) {
      return util::Status::Corruption("checkpoint has unknown parameter: " + name);
    }
    if (!ShapeMatchesCount(shape, data.size())) {
      return util::Status::Corruption("inconsistent shape for parameter: " + name);
    }
    Tensor t(std::move(shape), std::move(data));
    if (!t.SameShape(it->second.value())) {
      return util::Status::Corruption("shape mismatch for parameter: " + name);
    }
    it->second.mutable_value() = std::move(t);
  }
  if (!legacy) r->EndSection();
  if (!legacy) r->BeginSection();
  const uint64_t ne = r->ReadU64();
  for (uint64_t i = 0; i < ne && r->status().ok(); ++i) {
    const std::string name = r->ReadString();
    const int64_t rows = r->ReadI64();
    const int64_t cols = r->ReadI64();
    std::vector<float> data = r->ReadFloatVector();
    if (!r->status().ok()) break;
    auto it = embeddings_.find(name);
    if (it == embeddings_.end()) {
      return util::Status::Corruption("checkpoint has unknown embedding: " + name);
    }
    Embedding* e = it->second.get();
    if (rows != e->rows() || cols != e->cols() ||
        !ShapeMatchesCount({rows, cols}, data.size())) {
      return util::Status::Corruption("shape mismatch for embedding: " + name);
    }
    e->table() = Tensor({rows, cols}, std::move(data));
  }
  if (!legacy) r->EndSection();
  return r->status();
}

util::Status ParameterStore::Save(const std::string& path) const {
  util::AtomicFileWriter atomic(path);
  util::BinaryWriter w(atomic.temp_path());
  SaveTo(&w);
  w.WriteFooter();
  BOOTLEG_RETURN_IF_ERROR(w.Finish());
  return atomic.Commit();
}

util::Status ParameterStore::Load(const std::string& path) {
  // Probe the magic first: legacy v0 files have no footer to verify.
  util::BinaryReader probe(path);
  BOOTLEG_RETURN_IF_ERROR(probe.status());
  const bool legacy = probe.ReadU32() == kMagicV0;

  util::BinaryReader r(path);
  util::Status st = LoadFrom(&r);
  if (st.ok() && !legacy) {
    r.VerifyFooter();
    st = r.status();
  }
  if (!st.ok()) return util::Status::Corruption(st.message() + ": " + path);
  return util::Status::OK();
}

}  // namespace bootleg::nn

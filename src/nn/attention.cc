#include "nn/attention.h"

#include "obs/trace.h"

#include <cmath>

#include "nn/init.h"

namespace bootleg::nn {

using tensor::Tensor;
using tensor::Var;

MultiHeadAttention::MultiHeadAttention(ParameterStore* store,
                                       const std::string& prefix, int64_t hidden,
                                       int64_t num_heads, util::Rng* rng)
    : hidden_(hidden),
      num_heads_(num_heads),
      head_dim_(hidden / num_heads),
      wq_(store, prefix + ".wq", hidden, hidden, rng),
      wk_(store, prefix + ".wk", hidden, hidden, rng),
      wv_(store, prefix + ".wv", hidden, hidden, rng),
      wo_(store, prefix + ".wo", hidden, hidden, rng) {
  BOOTLEG_CHECK_MSG(hidden % num_heads == 0,
                    "hidden dim must be divisible by head count");
}

Var MultiHeadAttention::Attend(const Var& queries, const Var& keys) const {
  BOOTLEG_CHECK_EQ(queries.value().size(1), hidden_);
  BOOTLEG_CHECK_EQ(keys.value().size(1), hidden_);
  const Var q = wq_.Forward(queries);
  const Var k = wk_.Forward(keys);
  const Var v = wv_.Forward(keys);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<Var> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    const int64_t off = h * head_dim_;
    Var qh = tensor::SliceCols(q, off, head_dim_);
    Var kh = tensor::SliceCols(k, off, head_dim_);
    Var vh = tensor::SliceCols(v, off, head_dim_);
    Var scores = tensor::Scale(tensor::MatMulTransposedB(qh, kh), inv_sqrt);
    Var attn = tensor::SoftmaxRows(scores);
    heads.push_back(tensor::MatMul(attn, vh));
  }
  return wo_.Forward(tensor::ConcatCols(heads));
}

namespace {

/// Copies a [rows, cols] block out of a 2-D tensor — the value of
/// SliceCols(SliceRows(a, r0, rows), c0, cols) without the intermediate.
Tensor SliceBlock(const Tensor& a, int64_t r0, int64_t rows, int64_t c0,
                  int64_t cols) {
  Tensor out({rows, cols});
  const int64_t stride = a.size(1);
  const float* src = a.data() + r0 * stride + c0;
  float* dst = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) dst[i * cols + j] = src[i * stride + j];
  }
  return out;
}

}  // namespace

Tensor MultiHeadAttention::AttendSegmentsValue(
    const Tensor& queries, const Tensor& keys,
    const std::vector<AttentionSegment>& segments,
    const backend::Backend* be) const {
  BOOTLEG_CHECK_EQ(queries.size(1), hidden_);
  BOOTLEG_CHECK_EQ(keys.size(1), hidden_);
  if (be == nullptr) be = backend::Backend::ReferenceInstance();
  const Tensor q = wq_.ForwardValue(queries, be);
  const Tensor k = wk_.ForwardValue(keys, be);
  const Tensor v = wv_.ForwardValue(keys, be);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  Tensor concat({queries.size(0), hidden_});
  for (const AttentionSegment& seg : segments) {
    for (int64_t h = 0; h < num_heads_; ++h) {
      const int64_t off = h * head_dim_;
      Tensor qh = SliceBlock(q, seg.q_offset, seg.q_rows, off, head_dim_);
      Tensor kh = SliceBlock(k, seg.k_offset, seg.k_rows, off, head_dim_);
      Tensor vh = SliceBlock(v, seg.k_offset, seg.k_rows, off, head_dim_);
      Tensor attn =
          be->SoftmaxRows(be->ScaledMatMulTransposedB(qh, kh, inv_sqrt));
      Tensor head = be->MatMul(attn, vh);
      // Write the head's rows into its column block of the concat output.
      for (int64_t i = 0; i < seg.q_rows; ++i) {
        const float* src = head.data() + i * head_dim_;
        float* dst = concat.data() + (seg.q_offset + i) * hidden_ + off;
        for (int64_t j = 0; j < head_dim_; ++j) dst[j] = src[j];
      }
    }
  }
  return wo_.ForwardValue(concat, be);
}

void MultiHeadAttention::AppendFrozenWeights(
    const std::string& name, std::vector<backend::FrozenWeight>* out) const {
  wq_.AppendFrozenWeights(name + ".wq", out);
  wk_.AppendFrozenWeights(name + ".wk", out);
  wv_.AppendFrozenWeights(name + ".wv", out);
  wo_.AppendFrozenWeights(name + ".wo", out);
}

AttentionBlock::AttentionBlock(ParameterStore* store, const std::string& prefix,
                               int64_t hidden, int64_t num_heads,
                               int64_t ff_inner, util::Rng* rng)
    : mha_(store, prefix + ".mha", hidden, num_heads, rng),
      ln1_(store, prefix + ".ln1", hidden),
      ff_(store, prefix + ".ff", hidden, ff_inner, rng),
      ln2_(store, prefix + ".ln2", hidden),
      dropout_(0.1f) {}

Var AttentionBlock::Forward(const Var& queries, const Var& keys, util::Rng* rng,
                            bool train) const {
  Var attended = dropout_.Apply(mha_.Attend(queries, keys), rng, train);
  Var h = ln1_.Forward(tensor::Add(queries, attended));
  Var ff_out = dropout_.Apply(ff_.Forward(h, rng, train), rng, train);
  return ln2_.Forward(tensor::Add(h, ff_out));
}

Tensor AttentionBlock::ForwardSegmentsValue(
    const Tensor& queries, const Tensor& keys,
    const std::vector<AttentionSegment>& segments,
    const backend::Backend* be) const {
  OBS_SPAN("nn.attention.segments");
  Tensor attended = mha_.AttendSegmentsValue(queries, keys, segments, be);
  Tensor h = ln1_.ForwardValue(tensor::Add(queries, attended));
  Tensor ff_out = ff_.ForwardValue(h, be);
  return ln2_.ForwardValue(tensor::Add(h, ff_out));
}

void AttentionBlock::AppendFrozenWeights(
    const std::string& name, std::vector<backend::FrozenWeight>* out) const {
  mha_.AppendFrozenWeights(name + ".mha", out);
  ff_.AppendFrozenWeights(name + ".ff", out);
}

AdditiveAttention::AdditiveAttention(ParameterStore* store,
                                     const std::string& prefix, int64_t dim,
                                     int64_t attn_dim, util::Rng* rng)
    : proj_(store, prefix + ".proj", dim, attn_dim, rng),
      score_vec_(store->CreateParam(prefix + ".score_vec",
                                    XavierUniform(attn_dim, 1, rng))) {}

Var AdditiveAttention::Pool(const Var& items) const {
  BOOTLEG_CHECK_EQ(items.value().dim(), 2);
  // scores_i = vᵀ tanh(W x_i + b); weights = softmax(scores); out = Σ w_i x_i.
  Var hidden = tensor::TanhV(proj_.Forward(items));
  Var scores = tensor::MatMul(hidden, score_vec_);           // [t, 1]
  Var weights = tensor::SoftmaxRows(tensor::Transpose(scores));  // [1, t]
  return tensor::MatMul(weights, items);                     // [1, dim]
}

Tensor AdditiveAttention::PoolValue(const Tensor& items) const {
  BOOTLEG_CHECK_EQ(items.dim(), 2);
  Tensor hidden = tensor::TanhT(proj_.ForwardValue(items));
  Tensor scores = tensor::MatMul(hidden, score_vec_.value());
  Tensor weights = tensor::SoftmaxRows(tensor::Transpose(scores));
  return tensor::MatMul(weights, items);
}

}  // namespace bootleg::nn

#include "nn/attention.h"

#include <cmath>

#include "nn/init.h"

namespace bootleg::nn {

using tensor::Tensor;
using tensor::Var;

MultiHeadAttention::MultiHeadAttention(ParameterStore* store,
                                       const std::string& prefix, int64_t hidden,
                                       int64_t num_heads, util::Rng* rng)
    : hidden_(hidden),
      num_heads_(num_heads),
      head_dim_(hidden / num_heads),
      wq_(store, prefix + ".wq", hidden, hidden, rng),
      wk_(store, prefix + ".wk", hidden, hidden, rng),
      wv_(store, prefix + ".wv", hidden, hidden, rng),
      wo_(store, prefix + ".wo", hidden, hidden, rng) {
  BOOTLEG_CHECK_MSG(hidden % num_heads == 0,
                    "hidden dim must be divisible by head count");
}

Var MultiHeadAttention::Attend(const Var& queries, const Var& keys) const {
  BOOTLEG_CHECK_EQ(queries.value().size(1), hidden_);
  BOOTLEG_CHECK_EQ(keys.value().size(1), hidden_);
  const Var q = wq_.Forward(queries);
  const Var k = wk_.Forward(keys);
  const Var v = wv_.Forward(keys);
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<Var> heads;
  heads.reserve(static_cast<size_t>(num_heads_));
  for (int64_t h = 0; h < num_heads_; ++h) {
    const int64_t off = h * head_dim_;
    Var qh = tensor::SliceCols(q, off, head_dim_);
    Var kh = tensor::SliceCols(k, off, head_dim_);
    Var vh = tensor::SliceCols(v, off, head_dim_);
    Var scores = tensor::Scale(tensor::MatMulTransposedB(qh, kh), inv_sqrt);
    Var attn = tensor::SoftmaxRows(scores);
    heads.push_back(tensor::MatMul(attn, vh));
  }
  return wo_.Forward(tensor::ConcatCols(heads));
}

AttentionBlock::AttentionBlock(ParameterStore* store, const std::string& prefix,
                               int64_t hidden, int64_t num_heads,
                               int64_t ff_inner, util::Rng* rng)
    : mha_(store, prefix + ".mha", hidden, num_heads, rng),
      ln1_(store, prefix + ".ln1", hidden),
      ff_(store, prefix + ".ff", hidden, ff_inner, rng),
      ln2_(store, prefix + ".ln2", hidden),
      dropout_(0.1f) {}

Var AttentionBlock::Forward(const Var& queries, const Var& keys, util::Rng* rng,
                            bool train) const {
  Var attended = dropout_.Apply(mha_.Attend(queries, keys), rng, train);
  Var h = ln1_.Forward(tensor::Add(queries, attended));
  Var ff_out = dropout_.Apply(ff_.Forward(h, rng, train), rng, train);
  return ln2_.Forward(tensor::Add(h, ff_out));
}

AdditiveAttention::AdditiveAttention(ParameterStore* store,
                                     const std::string& prefix, int64_t dim,
                                     int64_t attn_dim, util::Rng* rng)
    : proj_(store, prefix + ".proj", dim, attn_dim, rng),
      score_vec_(store->CreateParam(prefix + ".score_vec",
                                    XavierUniform(attn_dim, 1, rng))) {}

Var AdditiveAttention::Pool(const Var& items) const {
  BOOTLEG_CHECK_EQ(items.value().dim(), 2);
  // scores_i = vᵀ tanh(W x_i + b); weights = softmax(scores); out = Σ w_i x_i.
  Var hidden = tensor::TanhV(proj_.Forward(items));
  Var scores = tensor::MatMul(hidden, score_vec_);           // [t, 1]
  Var weights = tensor::SoftmaxRows(tensor::Transpose(scores));  // [1, t]
  return tensor::MatMul(weights, items);                     // [1, dim]
}

}  // namespace bootleg::nn

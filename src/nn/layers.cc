#include "nn/layers.h"

#include <cmath>

#include "nn/init.h"

namespace bootleg::nn {

using tensor::Tensor;
using tensor::Var;

Linear::Linear(ParameterStore* store, const std::string& prefix, int64_t in,
               int64_t out, util::Rng* rng)
    : in_(in),
      out_(out),
      weight_(store->CreateParam(prefix + ".weight", XavierUniform(in, out, rng))),
      bias_(store->CreateParam(prefix + ".bias", Tensor({out}))) {}

Var Linear::Forward(const Var& x) const {
  BOOTLEG_CHECK_EQ(x.value().size(1), in_);
  return tensor::AddRowBroadcast(tensor::MatMul(x, weight_), bias_);
}

Tensor Linear::ForwardValue(const Tensor& x, const backend::Backend* be) const {
  BOOTLEG_CHECK_EQ(x.size(1), in_);
  if (be == nullptr) be = backend::Backend::ReferenceInstance();
  return be->LinearForward(x, weight_.value(), bias_.value());
}

void Linear::AppendFrozenWeights(
    const std::string& name, std::vector<backend::FrozenWeight>* out) const {
  out->push_back({name, &weight_.value(), &bias_.value()});
}

LayerNormLayer::LayerNormLayer(ParameterStore* store, const std::string& prefix,
                               int64_t dim)
    : gamma_(store->CreateParam(prefix + ".gamma", Tensor::Ones({dim}))),
      beta_(store->CreateParam(prefix + ".beta", Tensor({dim}))) {}

Var Dropout::Apply(const Var& x, util::Rng* rng, bool train) const {
  if (!train || p_ == 0.0f) return x;
  Tensor mask(x.value().shape());
  const float keep_scale = 1.0f / (1.0f - p_);
  // Raw threshold compare on the engine: one 64-bit draw per element, same
  // draw count as Rng::Bernoulli but without a distribution object and a
  // double conversion per element — this loop runs once per activation.
  const uint64_t threshold =
      static_cast<uint64_t>(static_cast<double>(p_) * 18446744073709551616.0);
  std::mt19937_64& engine = rng->engine();
  for (float& m : mask.vec()) {
    m = engine() < threshold ? 0.0f : keep_scale;
  }
  return tensor::MulConst(x, mask);
}

FeedForward::FeedForward(ParameterStore* store, const std::string& prefix,
                         int64_t dim, int64_t inner_dim, util::Rng* rng)
    : fc1_(store, prefix + ".fc1", dim, inner_dim, rng),
      fc2_(store, prefix + ".fc2", inner_dim, dim, rng),
      dropout_(0.1f) {}

Var FeedForward::Forward(const Var& x, util::Rng* rng, bool train) const {
  Var h = tensor::Gelu(fc1_.Forward(x));
  h = dropout_.Apply(h, rng, train);
  return fc2_.Forward(h);
}

Tensor FeedForward::ForwardValue(const Tensor& x,
                                 const backend::Backend* be) const {
  return fc2_.ForwardValue(tensor::Gelu(fc1_.ForwardValue(x, be)), be);
}

void FeedForward::AppendFrozenWeights(
    const std::string& name, std::vector<backend::FrozenWeight>* out) const {
  fc1_.AppendFrozenWeights(name + ".fc1", out);
  fc2_.AppendFrozenWeights(name + ".fc2", out);
}

Mlp::Mlp(ParameterStore* store, const std::string& prefix,
         const std::vector<int64_t>& dims, util::Rng* rng)
    : dropout_(0.1f) {
  BOOTLEG_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(store, prefix + ".l" + std::to_string(i), dims[i],
                         dims[i + 1], rng);
  }
}

Var Mlp::Forward(const Var& x, util::Rng* rng, bool train) const {
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].Forward(h);
    if (i + 1 < layers_.size()) {
      h = tensor::Relu(h);
      h = dropout_.Apply(h, rng, train);
    }
  }
  return h;
}

Tensor Mlp::ForwardValue(const Tensor& x, const backend::Backend* be) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i].ForwardValue(h, be);
    if (i + 1 < layers_.size()) h = tensor::Relu(h);
  }
  return h;
}

void Mlp::AppendFrozenWeights(const std::string& name,
                              std::vector<backend::FrozenWeight>* out) const {
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].AppendFrozenWeights(name + ".l" + std::to_string(i), out);
  }
}

Tensor SinusoidalPositionTable(int64_t max_len, int64_t dim) {
  Tensor table({max_len, dim});
  for (int64_t pos = 0; pos < max_len; ++pos) {
    for (int64_t i = 0; i < dim; ++i) {
      const double angle =
          static_cast<double>(pos) /
          std::pow(10000.0, 2.0 * static_cast<double>(i / 2) / static_cast<double>(dim));
      table.at(pos, i) =
          static_cast<float>((i % 2 == 0) ? std::sin(angle) : std::cos(angle));
    }
  }
  return table;
}

}  // namespace bootleg::nn

#ifndef BOOTLEG_DOWNSTREAM_RELATION_EXTRACTION_H_
#define BOOTLEG_DOWNSTREAM_RELATION_EXTRACTION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/model.h"
#include "data/example.h"
#include "data/world.h"
#include "nn/layers.h"
#include "nn/param_store.h"
#include "text/word_encoder.h"

namespace bootleg::downstream {

/// One TACRED-sim relation-extraction example: a sentence, subject/object
/// spans, and the gold relation (the KG relation between the gold subject
/// and object entities, or no_relation). Labels are derivable only through
/// correct disambiguation when the relation keyword is absent from the text —
/// the mechanism the paper's Sec. 4.3 exercises.
struct ReExample {
  std::vector<int64_t> token_ids;
  int64_t subj_start = 0, subj_end = 0;
  int64_t obj_start = 0, obj_end = 0;
  int64_t label = 0;  // relation id, or num_relations for "no_relation"
  bool has_relation_keyword = false;

  /// NED view of the same sentence (subject mention first, object second).
  data::SentenceExample ned;

  /// Features filled by PrepareBootlegFeatures / PrepareStaticFeatures.
  std::vector<float> subj_ctx;  // contextual Bootleg embedding (may be empty)
  std::vector<float> obj_ctx;
  std::vector<float> subj_static;  // static entity embedding of the prior
  std::vector<float> obj_static;   // candidate (KnowBERT stand-in)

  /// Signal statistics for the Table 12/13 slice analyses: fractions of
  /// words where Bootleg disambiguates an entity / leverages Wikidata-style
  /// relations / leverages types for the embedding.
  double entity_signal_fraction = 0.0;
  double relation_signal_fraction = 0.0;
  double type_signal_fraction = 0.0;
  bool subj_obj_have_relation_signal = false;
  bool subj_obj_have_type_signal = false;
};

struct ReDataset {
  std::vector<ReExample> train;
  std::vector<ReExample> test;
  int64_t num_labels = 0;  // num_relations + 1 (no_relation)
};

/// Generates a TACRED-sim dataset from the world. `keyword_prob` controls how
/// often the relation keyword appears in positive sentences (lower = harder
/// for text-only models).
ReDataset GenerateReDataset(const data::SynthWorld& world, int64_t num_train,
                            int64_t num_test, uint64_t seed,
                            double keyword_prob = 0.5);

/// Fills subj_ctx/obj_ctx with contextual Bootleg embeddings and the signal
/// statistics, by running `bootleg` inference over every example.
void PrepareBootlegFeatures(core::BootlegModel* bootleg,
                            const data::SynthWorld& world,
                            std::vector<ReExample>* examples);

/// Fills subj_static/obj_static with static entity embeddings of each span's
/// top-prior candidate (the KnowBERT stand-in: entity knowledge without
/// contextual disambiguation). `entity_table` is [num_entities, dim].
void PrepareStaticFeatures(const tensor::Tensor& entity_table,
                           std::vector<ReExample>* examples);

/// Which knowledge the downstream model consumes.
enum class ReMode {
  kText = 0,     // SpanBERT stand-in: text only
  kStatic = 1,   // KnowBERT stand-in: text + static entity embeddings
  kBootleg = 2,  // text + contextual Bootleg embeddings
};

const char* ReModeName(ReMode mode);

/// The downstream relation-extraction model: a text encoder over the
/// sentence, span representations for subject and object, optional knowledge
/// features concatenated, then an MLP over relation labels.
class ReModel {
 public:
  ReModel(int64_t vocab_size, int64_t num_labels, ReMode mode,
          int64_t knowledge_dim, uint64_t seed);

  tensor::Var Loss(const ReExample& example, bool train);
  int64_t Predict(const ReExample& example);

  nn::ParameterStore& store() { return store_; }
  ReMode mode() const { return mode_; }

 private:
  tensor::Var Features(const ReExample& example, bool train);

  ReMode mode_;
  int64_t num_labels_;
  int64_t knowledge_dim_;
  util::Rng rng_;
  nn::ParameterStore store_;
  std::unique_ptr<text::WordEncoder> encoder_;
  std::unique_ptr<nn::Mlp> head_;
};

struct ReTrainOptions {
  int64_t epochs = 8;
  int64_t batch_size = 8;
  float lr = 1e-3f;
  uint64_t seed = 5;
};

void TrainRe(ReModel* model, const std::vector<ReExample>& train,
             const ReTrainOptions& options);

/// TACRED micro-F1: precision/recall computed over non-"no_relation"
/// predictions and golds, the benchmark's standard metric.
struct ReMetrics {
  int64_t correct_positive = 0;
  int64_t predicted_positive = 0;
  int64_t gold_positive = 0;
  std::vector<int64_t> predictions;  // aligned with the eval set

  double precision() const {
    return predicted_positive == 0
               ? 0.0
               : 100.0 * static_cast<double>(correct_positive) / predicted_positive;
  }
  double recall() const {
    return gold_positive == 0
               ? 0.0
               : 100.0 * static_cast<double>(correct_positive) / gold_positive;
  }
  double f1() const {
    const double p = precision(), r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

ReMetrics EvaluateRe(ReModel* model, const std::vector<ReExample>& test,
                     int64_t no_relation_label);

}  // namespace bootleg::downstream

#endif  // BOOTLEG_DOWNSTREAM_RELATION_EXTRACTION_H_

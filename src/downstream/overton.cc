#include "downstream/overton.h"

namespace bootleg::downstream {

using tensor::Tensor;
using tensor::Var;

OvertonModel::OvertonModel(int64_t num_entities, int64_t vocab_size,
                           core::BootlegModel* bootleg, uint64_t seed)
    : bootleg_(bootleg), rng_(seed) {
  text::WordEncoderConfig enc;
  enc.hidden = 64;
  enc.num_layers = 1;
  enc.max_len = 32;
  encoder_ = std::make_unique<text::WordEncoder>(&store_, "encoder", vocab_size,
                                                 enc, &rng_);
  entity_emb_ = store_.CreateEmbedding("entity_emb", num_entities, 64, &rng_);
  query_proj_ =
      std::make_unique<nn::Linear>(&store_, "query_proj", enc.hidden, 64, &rng_);
  if (bootleg_ != nullptr) {
    // Score-level fusion: Bootleg's per-candidate vote enters the logits
    // through a learned gate, the way a production system consumes an
    // auxiliary disambiguation signal. The gate starts closed (0) so the
    // vote is adopted only where training shows it helps.
    bootleg_gate_ = store_.CreateParam("bootleg_gate", Tensor({1, 1}));
  }
}

Var OvertonModel::MentionLogits(const Var& w,
                                const data::MentionExample& mention,
                                kb::EntityId bootleg_pick) {
  if (mention.candidates.empty()) return Var();
  const int64_t n = w.value().size(0);
  const int64_t first =
      std::max<int64_t>(0, std::min(mention.span_start, n - 1));
  const int64_t last = std::max<int64_t>(0, std::min(mention.span_end, n - 1));
  Var m = text::WordEncoder::MentionEmbedding(w, first, last);
  Var q = query_proj_->Forward(m);
  Var u = entity_emb_->Lookup(mention.candidates);
  Var logits = tensor::MatMul(q, tensor::Transpose(u));  // [1, K]
  if (bootleg_ != nullptr && bootleg_pick != kb::kInvalidId) {
    Tensor indicator({1, static_cast<int64_t>(mention.candidates.size())});
    for (size_t k = 0; k < mention.candidates.size(); ++k) {
      if (mention.candidates[k] == bootleg_pick) indicator.at(0, k) = 1.0f;
    }
    // logits += gate · indicator: MatMul of the [1,1] gate with the [1,K]
    // indicator scales the vote by the learned gate.
    logits = tensor::Add(
        logits,
        tensor::MatMul(bootleg_gate_, Var::Constant(std::move(indicator))));
  }
  return logits;
}

Var OvertonModel::Loss(const data::SentenceExample& example, bool train) {
  if (example.token_ids.empty()) return Var();
  std::vector<core::BootlegModel::ContextualMention> ctx;
  if (bootleg_ != nullptr) ctx = bootleg_->ContextualEmbeddings(example);
  Var w = encoder_->Encode(example.token_ids, &rng_, train);
  std::vector<Var> losses;
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    const data::MentionExample& mention = example.mentions[mi];
    if (mention.gold_index < 0) continue;
    const kb::EntityId pick =
        bootleg_ == nullptr ? kb::kInvalidId : ctx[mi].entity;
    Var logits = MentionLogits(w, mention, pick);
    if (!logits.defined()) continue;
    losses.push_back(tensor::CrossEntropy(logits, {mention.gold_index}));
  }
  if (losses.empty()) return Var();
  Var loss = losses[0];
  for (size_t i = 1; i < losses.size(); ++i) loss = tensor::Add(loss, losses[i]);
  return tensor::Scale(loss, 1.0f / static_cast<float>(losses.size()));
}

std::vector<int64_t> OvertonModel::Predict(const data::SentenceExample& example) {
  std::vector<int64_t> preds(example.mentions.size(), -1);
  if (example.token_ids.empty()) return preds;
  std::vector<core::BootlegModel::ContextualMention> ctx;
  if (bootleg_ != nullptr) ctx = bootleg_->ContextualEmbeddings(example);
  Var w = encoder_->Encode(example.token_ids, &rng_, /*train=*/false);
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    const kb::EntityId pick =
        bootleg_ == nullptr ? kb::kInvalidId : ctx[mi].entity;
    Var logits = MentionLogits(w, example.mentions[mi], pick);
    if (!logits.defined()) continue;
    const Tensor& s = logits.value();
    int64_t best = 0;
    for (int64_t k = 1; k < s.size(1); ++k) {
      if (s.at(0, k) > s.at(0, best)) best = k;
    }
    preds[mi] = best;
  }
  return preds;
}

}  // namespace bootleg::downstream

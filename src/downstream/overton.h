#ifndef BOOTLEG_DOWNSTREAM_OVERTON_H_
#define BOOTLEG_DOWNSTREAM_OVERTON_H_

#include <memory>
#include <vector>

#include "core/model.h"
#include "data/example.h"
#include "eval/evaluator.h"
#include "nn/layers.h"
#include "text/word_encoder.h"

namespace bootleg::downstream {

/// The industry use case of Sec. 4.3: an Overton-style factoid system whose
/// in-house disambiguation model optionally consumes Bootleg's output. The
/// baseline scores candidates from text alone; the subject model additionally
/// receives the frozen Bootleg model's contextual disambiguation as a
/// per-candidate vote through a learned gate (score-level signal fusion, the
/// way Overton composes auxiliary model signals). Table 5 reports the
/// subject's F1 relative to the baseline's, overall and on the tail, across
/// languages.
class OvertonModel : public eval::NedScorer {
 public:
  /// `bootleg` may be null (the baseline system). When set, it is used as a
  /// frozen feature extractor.
  OvertonModel(int64_t num_entities, int64_t vocab_size,
               core::BootlegModel* bootleg, uint64_t seed);

  tensor::Var Loss(const data::SentenceExample& example, bool train);
  std::vector<int64_t> Predict(const data::SentenceExample& example) override;

  nn::ParameterStore& store() { return store_; }

 private:
  /// Candidate logits: proj(text_rep) · u_c plus a learned-gate bonus on the
  /// candidate Bootleg's contextual disambiguation picked.
  tensor::Var MentionLogits(const tensor::Var& w,
                            const data::MentionExample& mention,
                            kb::EntityId bootleg_pick);

  core::BootlegModel* bootleg_;
  util::Rng rng_;
  nn::ParameterStore store_;
  std::unique_ptr<text::WordEncoder> encoder_;
  nn::Embedding* entity_emb_ = nullptr;
  std::unique_ptr<nn::Linear> query_proj_;
  tensor::Var bootleg_gate_;  // [1,1], defined only with a bootleg model
};

}  // namespace bootleg::downstream

#endif  // BOOTLEG_DOWNSTREAM_OVERTON_H_

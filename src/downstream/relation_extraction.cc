#include "downstream/relation_extraction.h"

#include <algorithm>
#include <limits>

#include "nn/optimizer.h"

namespace bootleg::downstream {

using kb::EntityId;
using tensor::Tensor;
using tensor::Var;

const char* ReModeName(ReMode mode) {
  switch (mode) {
    case ReMode::kText:
      return "SpanBERT-sim (text only)";
    case ReMode::kStatic:
      return "KnowBERT-sim (static entity)";
    case ReMode::kBootleg:
      return "Bootleg (contextual entity)";
  }
  return "?";
}

namespace {

/// Adds a mention over the last-pushed token.
void PushMention(const data::SynthWorld& world, data::SentenceExample* ned,
                 std::vector<std::string>* tokens, const std::string& alias,
                 EntityId gold) {
  data::MentionExample m;
  m.span_start = static_cast<int64_t>(tokens->size());
  m.span_end = m.span_start;
  m.gold = gold;
  const auto* cands = world.candidates.Lookup(alias);
  if (cands != nullptr) {
    for (size_t i = 0; i < cands->size(); ++i) {
      m.candidates.push_back((*cands)[i].entity);
      m.priors.push_back((*cands)[i].prior);
      if ((*cands)[i].entity == gold) m.gold_index = static_cast<int64_t>(i);
    }
  }
  tokens->push_back(alias);
  ned->mentions.push_back(std::move(m));
}

/// Picks the type of `gold` shared by the fewest other candidates of
/// `alias` — the discriminative type the surrounding text would evoke.
kb::TypeId DiscriminativeType(const data::SynthWorld& world, EntityId gold,
                              const std::string& alias, util::Rng* rng) {
  const auto& types = world.kb.entity(gold).types;
  BOOTLEG_CHECK(!types.empty());
  const auto* cands = world.candidates.Lookup(alias);
  if (cands == nullptr || cands->size() < 2) return rng->Choice(types);
  kb::TypeId best = types.front();
  int64_t best_collisions = std::numeric_limits<int64_t>::max();
  for (kb::TypeId t : types) {
    int64_t collisions = 0;
    for (const kb::Candidate& c : *cands) {
      if (c.entity == gold) continue;
      const auto& other = world.kb.entity(c.entity).types;
      if (std::find(other.begin(), other.end(), t) != other.end()) ++collisions;
    }
    if (collisions < best_collisions) {
      best_collisions = collisions;
      best = t;
    }
  }
  return best;
}

ReExample MakeReExample(const data::SynthWorld& world, util::Rng* rng,
                        EntityId subj, EntityId obj, int64_t label,
                        bool use_relation_keyword, kb::RelationId rel) {
  ReExample ex;
  std::vector<std::string> tokens;
  const std::string subj_alias = world.SampleAlias(subj, rng);
  tokens.push_back("the");
  PushMention(world, &ex.ned, &tokens, subj_alias, subj);
  ex.subj_start = ex.subj_end = static_cast<int64_t>(tokens.size()) - 1;

  if (use_relation_keyword) {
    tokens.push_back(
        rng->Choice(world.relation_keywords[static_cast<size_t>(rel)]));
    ex.has_relation_keyword = true;
  } else {
    static const std::vector<std::string> kNeutral = {"with", "near", "of"};
    tokens.push_back(rng->Choice(kNeutral));
  }
  const std::string obj_alias = world.SampleAlias(obj, rng);
  tokens.push_back("the");
  PushMention(world, &ex.ned, &tokens, obj_alias, obj);
  ex.obj_start = ex.obj_end = static_cast<int64_t>(tokens.size()) - 1;

  // Disambiguation context: discriminative affordance keywords and cue words
  // let Bootleg resolve the spans even without the relation keyword.
  auto add_type_kw = [&](EntityId e, const std::string& alias, double prob) {
    const auto& types = world.kb.entity(e).types;
    if (types.empty() || rng->Uniform() >= prob) return;
    const kb::TypeId t = DiscriminativeType(world, e, alias, rng);
    tokens.push_back(rng->Choice(world.type_keywords[static_cast<size_t>(t)]));
  };
  add_type_kw(subj, subj_alias, 0.9);
  add_type_kw(obj, obj_alias, 0.8);
  if (rng->Uniform() < 0.4) {
    const auto& cues = world.entity_cues[static_cast<size_t>(subj)];
    if (!cues.empty()) tokens.push_back(rng->Choice(cues));
  }
  tokens.push_back(rng->Choice(world.filler_words));
  tokens.push_back(".");

  for (const std::string& tok : tokens) {
    ex.token_ids.push_back(world.vocab.Id(tok));
  }
  ex.ned.token_ids = ex.token_ids;
  ex.label = label;
  ex.entity_signal_fraction = 0.0;
  int64_t with_cands = 0;
  for (const data::MentionExample& m : ex.ned.mentions) {
    if (!m.candidates.empty()) ++with_cands;
  }
  ex.entity_signal_fraction =
      static_cast<double>(with_cands) / static_cast<double>(tokens.size());
  return ex;
}

std::vector<ReExample> MakeReSplit(const data::SynthWorld& world,
                                   util::Rng* rng, int64_t n,
                                   double keyword_prob) {
  const auto& triples = world.kb.triples();
  BOOTLEG_CHECK(!triples.empty());
  std::vector<ReExample> out;
  out.reserve(static_cast<size_t>(n));
  while (static_cast<int64_t>(out.size()) < n) {
    if (rng->Bernoulli(0.65)) {
      // Positive: the label is the KG relation between the gold pair.
      const kb::Triple& t = rng->Choice(triples);
      out.push_back(MakeReExample(world, rng, t.subject, t.object, t.relation,
                                  rng->Bernoulli(keyword_prob), t.relation));
    } else {
      // Negative: an unconnected pair → no_relation.
      const EntityId a = world.SampleEntity(rng, /*allow_holdout=*/true);
      const EntityId b = world.SampleEntity(rng, /*allow_holdout=*/true);
      if (a == b || world.kb.Connected(a, b)) continue;
      out.push_back(MakeReExample(world, rng, a, b,
                                  world.kb.num_relations(),
                                  /*use_relation_keyword=*/false, 0));
    }
  }
  return out;
}

}  // namespace

ReDataset GenerateReDataset(const data::SynthWorld& world, int64_t num_train,
                            int64_t num_test, uint64_t seed,
                            double keyword_prob) {
  util::Rng rng(seed);
  ReDataset ds;
  ds.num_labels = world.kb.num_relations() + 1;
  ds.train = MakeReSplit(world, &rng, num_train, keyword_prob);
  ds.test = MakeReSplit(world, &rng, num_test, keyword_prob);
  return ds;
}

void PrepareBootlegFeatures(core::BootlegModel* bootleg,
                            const data::SynthWorld& world,
                            std::vector<ReExample>* examples) {
  // The downstream feature is the entity embedding of the candidate
  // *Bootleg's contextual disambiguation* selects. The paper feeds the full
  // contextual E_k matrix into a Transformer head; at this repo's data scale
  // the raw attention-layer rows overfit a small head, while the
  // contextually-disambiguated identity transfers cleanly — the deviation is
  // recorded in EXPERIMENTS.md. (The static KnowBERT arm differs exactly in
  // using the *prior* candidate instead of Bootleg's prediction.)
  const nn::Embedding* entity_table =
      bootleg->config().use_entity ? bootleg->store().GetEmbedding("entity_emb")
                                   : nullptr;
  BOOTLEG_CHECK_MSG(entity_table != nullptr,
                    "downstream features require the entity-embedding table");
  auto identity_of = [&](const core::BootlegModel::ContextualMention& cm) {
    const int64_t cols = entity_table->cols();
    if (cm.entity == kb::kInvalidId) {
      return std::vector<float>(static_cast<size_t>(cols), 0.0f);
    }
    const float* row = entity_table->table().data() + cm.entity * cols;
    return std::vector<float>(row, row + cols);
  };
  for (ReExample& ex : *examples) {
    const auto ctx = bootleg->ContextualEmbeddings(ex.ned);
    BOOTLEG_CHECK_EQ(ctx.size(), ex.ned.mentions.size());
    BOOTLEG_CHECK_GE(ctx.size(), 2u);
    ex.subj_ctx = identity_of(ctx[0]);
    ex.obj_ctx = identity_of(ctx[1]);
    const EntityId ps = ctx[0].entity;
    const EntityId po = ctx[1].entity;
    ex.subj_obj_have_relation_signal =
        ps != kb::kInvalidId && po != kb::kInvalidId && world.kb.Connected(ps, po);
    ex.subj_obj_have_type_signal =
        (ps != kb::kInvalidId && !world.kb.entity(ps).types.empty()) ||
        (po != kb::kInvalidId && !world.kb.entity(po).types.empty());

    // Per-word signal fractions for the Table 12 median split.
    const double words = static_cast<double>(ex.token_ids.size());
    int64_t with_rel = 0, with_type = 0;
    for (const auto& cm : ctx) {
      if (cm.entity == kb::kInvalidId) continue;
      if (!world.kb.entity(cm.entity).relations.empty()) ++with_rel;
      if (!world.kb.entity(cm.entity).types.empty()) ++with_type;
    }
    ex.relation_signal_fraction = with_rel / words;
    ex.type_signal_fraction = with_type / words;
  }
}

void PrepareStaticFeatures(const Tensor& entity_table,
                           std::vector<ReExample>* examples) {
  const int64_t dim = entity_table.size(1);
  for (ReExample& ex : *examples) {
    auto static_of = [&](const data::MentionExample& m) -> std::vector<float> {
      if (m.candidates.empty()) return std::vector<float>(static_cast<size_t>(dim), 0.0f);
      // Top-prior candidate: entity knowledge without contextual
      // disambiguation (the KnowBERT stand-in).
      size_t best = 0;
      for (size_t k = 1; k < m.priors.size(); ++k) {
        if (m.priors[k] > m.priors[best]) best = k;
      }
      const EntityId e = m.candidates[best];
      return std::vector<float>(entity_table.data() + e * dim,
                                entity_table.data() + (e + 1) * dim);
    };
    ex.subj_static = static_of(ex.ned.mentions[0]);
    ex.obj_static = static_of(ex.ned.mentions[1]);
  }
}

ReModel::ReModel(int64_t vocab_size, int64_t num_labels, ReMode mode,
                 int64_t knowledge_dim, uint64_t seed)
    : mode_(mode),
      num_labels_(num_labels),
      knowledge_dim_(knowledge_dim),
      rng_(seed) {
  text::WordEncoderConfig enc;
  enc.hidden = 64;
  enc.num_layers = 1;
  enc.max_len = 32;
  encoder_ = std::make_unique<text::WordEncoder>(&store_, "encoder", vocab_size,
                                                 enc, &rng_);
  const int64_t span_dim = 3 * enc.hidden;  // subj, obj, subj⊙obj
  const int64_t extra = mode == ReMode::kText ? 0 : 3 * knowledge_dim;
  head_ = std::make_unique<nn::Mlp>(
      &store_, "head",
      std::vector<int64_t>{span_dim + extra, 64, num_labels}, &rng_);
}

Var ReModel::Features(const ReExample& example, bool train) {
  Var w = encoder_->Encode(example.token_ids, &rng_, train);
  const int64_t n = w.value().size(0);
  auto clamp = [n](int64_t i) { return std::max<int64_t>(0, std::min(i, n - 1)); };
  Var subj = text::WordEncoder::MentionEmbedding(w, clamp(example.subj_start),
                                                 clamp(example.subj_end));
  Var obj = text::WordEncoder::MentionEmbedding(w, clamp(example.obj_start),
                                                clamp(example.obj_end));
  // Pairwise interaction (subj ⊙ obj) is the standard relation-decoding
  // feature; every mode gets it over its own representations so the
  // comparison stays fair.
  std::vector<Var> parts = {subj, obj, tensor::Mul(subj, obj)};
  if (mode_ != ReMode::kText) {
    const std::vector<float>& s_feat =
        mode_ == ReMode::kBootleg ? example.subj_ctx : example.subj_static;
    const std::vector<float>& o_feat =
        mode_ == ReMode::kBootleg ? example.obj_ctx : example.obj_static;
    BOOTLEG_CHECK_EQ(static_cast<int64_t>(s_feat.size()), knowledge_dim_);
    BOOTLEG_CHECK_EQ(static_cast<int64_t>(o_feat.size()), knowledge_dim_);
    Var s = Var::Constant(Tensor({1, knowledge_dim_}, s_feat));
    Var o = Var::Constant(Tensor({1, knowledge_dim_}, o_feat));
    parts.push_back(s);
    parts.push_back(o);
    parts.push_back(tensor::Mul(s, o));
  }
  return tensor::ConcatCols(parts);
}

Var ReModel::Loss(const ReExample& example, bool train) {
  Var logits = head_->Forward(Features(example, train), &rng_, train);
  return tensor::CrossEntropy(logits, {example.label});
}

int64_t ReModel::Predict(const ReExample& example) {
  Var logits = head_->Forward(Features(example, /*train=*/false), &rng_, false);
  const Tensor& s = logits.value();
  int64_t best = 0;
  for (int64_t k = 1; k < num_labels_; ++k) {
    if (s.at(0, k) > s.at(0, best)) best = k;
  }
  return best;
}

void TrainRe(ReModel* model, const std::vector<ReExample>& train,
             const ReTrainOptions& options) {
  util::Rng rng(options.seed);
  nn::Adam::Options adam_options;
  adam_options.lr = options.lr;
  nn::Adam optimizer(&model->store(), adam_options);
  std::vector<size_t> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    int64_t in_batch = 0;
    for (size_t idx : order) {
      Var loss = model->Loss(train[idx], /*train=*/true);
      tensor::Backward(loss);
      if (++in_batch >= options.batch_size) {
        optimizer.Step();
        in_batch = 0;
      }
    }
    if (in_batch > 0) optimizer.Step();
  }
}

ReMetrics EvaluateRe(ReModel* model, const std::vector<ReExample>& test,
                     int64_t no_relation_label) {
  ReMetrics metrics;
  metrics.predictions.reserve(test.size());
  for (const ReExample& ex : test) {
    const int64_t pred = model->Predict(ex);
    metrics.predictions.push_back(pred);
    if (ex.label != no_relation_label) ++metrics.gold_positive;
    if (pred != no_relation_label) {
      ++metrics.predicted_positive;
      if (pred == ex.label) ++metrics.correct_positive;
    }
  }
  return metrics;
}

}  // namespace bootleg::downstream

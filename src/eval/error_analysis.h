#ifndef BOOTLEG_EVAL_ERROR_ANALYSIS_H_
#define BOOTLEG_EVAL_ERROR_ANALYSIS_H_

#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "kb/kb.h"

namespace bootleg::eval {

/// The four error buckets of Section 5 (Table 8).
enum class ErrorBucket {
  kGranularity = 0,  // predicted is a subclass of gold or vice versa
  kNumerical = 1,    // gold title contains a year
  kMultiHop = 2,     // gold 2-hop (but not 1-hop) connected to a co-mention
  kExactMatch = 3,   // the mention surface form is exactly the gold title
};

const char* ErrorBucketName(ErrorBucket b);

/// Per-bucket error shares plus illustrative examples.
struct ErrorBucketReport {
  ErrorBucket bucket;
  int64_t overall_errors_in_bucket = 0;
  int64_t overall_errors = 0;
  int64_t tail_errors_in_bucket = 0;
  int64_t tail_errors = 0;
  std::vector<std::string> examples;  // rendered sentences with gold/pred

  double OverallShare() const {
    return overall_errors == 0
               ? 0.0
               : 100.0 * static_cast<double>(overall_errors_in_bucket) / overall_errors;
  }
  double TailShare() const {
    return tail_errors == 0
               ? 0.0
               : 100.0 * static_cast<double>(tail_errors_in_bucket) / tail_errors;
  }
};

/// True if an erroneous record belongs to `bucket`.
bool InErrorBucket(const kb::KnowledgeBase& kb, const PredictionRecord& record,
                   ErrorBucket bucket);

/// Computes Table 8-style reports over all four buckets from a model's
/// errors. `max_examples` caps the rendered examples per bucket.
std::vector<ErrorBucketReport> AnalyzeErrors(const kb::KnowledgeBase& kb,
                                             const ResultSet& results,
                                             int max_examples = 2);

}  // namespace bootleg::eval

#endif  // BOOTLEG_EVAL_ERROR_ANALYSIS_H_

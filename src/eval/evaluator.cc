#include "eval/evaluator.h"

namespace bootleg::eval {

Prf ResultSet::Filtered(
    const std::function<bool(const PredictionRecord&)>& keep) const {
  Prf prf;
  for (const PredictionRecord& r : records_) {
    if (!r.Eligible() || !keep(r)) continue;
    ++prf.total;
    if (r.HasPrediction()) ++prf.predicted;
    if (r.Correct()) ++prf.correct;
  }
  return prf;
}

Prf ResultSet::Overall() const {
  return Filtered([](const PredictionRecord&) { return true; });
}

Prf ResultSet::ByBucket(data::PopularityBucket bucket) const {
  return Filtered(
      [bucket](const PredictionRecord& r) { return r.bucket == bucket; });
}

Prf ResultSet::Benchmark() const {
  Prf prf;
  for (const PredictionRecord& r : records_) {
    ++prf.total;
    if (r.HasPrediction()) ++prf.predicted;
    if (r.Correct()) ++prf.correct;
  }
  return prf;
}

int64_t ResultSet::NumEligible() const {
  int64_t n = 0;
  for (const PredictionRecord& r : records_) {
    if (r.Eligible()) ++n;
  }
  return n;
}

ResultSet RunEvaluation(NedScorer* model,
                        const std::vector<data::Sentence>& sentences,
                        const data::ExampleBuilder& builder,
                        const data::ExampleOptions& options,
                        const data::EntityCounts& counts) {
  data::ExampleOptions eval_options = options;
  eval_options.include_weak_labels = false;  // evaluate true anchors only
  ResultSet results;
  for (const data::Sentence& sentence : sentences) {
    const data::SentenceExample example = builder.Build(sentence, eval_options);
    if (example.mentions.empty()) continue;
    const std::vector<int64_t> preds = model->Predict(example);
    BOOTLEG_CHECK_EQ(preds.size(), example.mentions.size());
    for (size_t k = 0; k < example.mentions.size(); ++k) {
      const data::MentionExample& me = example.mentions[k];
      PredictionRecord rec;
      rec.sentence = &sentence;
      rec.mention_idx = static_cast<size_t>(me.sentence_mention_index);
      rec.gold = me.gold;
      rec.alias = sentence.mentions[rec.mention_idx].alias;
      rec.gold_in_candidates = me.GoldInCandidates();
      rec.num_candidates = static_cast<int64_t>(me.candidates.size());
      rec.bucket = counts.BucketOf(me.gold);
      if (preds[k] >= 0 &&
          preds[k] < static_cast<int64_t>(me.candidates.size())) {
        rec.predicted = me.candidates[static_cast<size_t>(preds[k])];
      }
      results.Add(std::move(rec));
    }
  }
  return results;
}

}  // namespace bootleg::eval

#include "eval/evaluator.h"

#include "obs/trace.h"
#include "util/thread_pool.h"

namespace bootleg::eval {

Prf ResultSet::Filtered(
    const std::function<bool(const PredictionRecord&)>& keep) const {
  Prf prf;
  for (const PredictionRecord& r : records_) {
    if (!r.Eligible() || !keep(r)) continue;
    ++prf.total;
    if (r.HasPrediction()) ++prf.predicted;
    if (r.Correct()) ++prf.correct;
  }
  return prf;
}

Prf ResultSet::Overall() const {
  return Filtered([](const PredictionRecord&) { return true; });
}

Prf ResultSet::ByBucket(data::PopularityBucket bucket) const {
  return Filtered(
      [bucket](const PredictionRecord& r) { return r.bucket == bucket; });
}

Prf ResultSet::Benchmark() const {
  Prf prf;
  for (const PredictionRecord& r : records_) {
    ++prf.total;
    if (r.HasPrediction()) ++prf.predicted;
    if (r.Correct()) ++prf.correct;
  }
  return prf;
}

int64_t ResultSet::NumEligible() const {
  int64_t n = 0;
  for (const PredictionRecord& r : records_) {
    if (r.Eligible()) ++n;
  }
  return n;
}

namespace {

// Evaluates one sentence into `out` (which starts empty and stays empty when
// the sentence yields no mentions).
void EvaluateSentence(NedScorer* model, const data::Sentence& sentence,
                      const data::ExampleBuilder& builder,
                      const data::ExampleOptions& eval_options,
                      const data::EntityCounts& counts,
                      std::vector<PredictionRecord>* out) {
  OBS_SPAN("eval.sentence");
  const data::SentenceExample example = builder.Build(sentence, eval_options);
  if (example.mentions.empty()) return;
  const std::vector<int64_t> preds = model->Predict(example);
  BOOTLEG_CHECK_EQ(preds.size(), example.mentions.size());
  for (size_t k = 0; k < example.mentions.size(); ++k) {
    const data::MentionExample& me = example.mentions[k];
    PredictionRecord rec;
    rec.sentence = &sentence;
    rec.mention_idx = static_cast<size_t>(me.sentence_mention_index);
    rec.gold = me.gold;
    rec.alias = sentence.mentions[rec.mention_idx].alias;
    rec.candidate_alias = sentence.mentions[rec.mention_idx].candidate_alias;
    rec.gold_in_candidates = me.GoldInCandidates();
    rec.num_candidates = static_cast<int64_t>(me.candidates.size());
    rec.bucket = counts.BucketOf(me.gold);
    if (preds[k] >= 0 &&
        preds[k] < static_cast<int64_t>(me.candidates.size())) {
      rec.predicted = me.candidates[static_cast<size_t>(preds[k])];
      // Prior-vs-context diagnostic: did the model just follow the prior?
      // Ties go to the first (highest-ranked) candidate, matching the
      // finalized candidate-list order.
      size_t argmax = 0;
      for (size_t c = 1; c < me.priors.size(); ++c) {
        if (me.priors[c] > me.priors[argmax]) argmax = c;
      }
      rec.prior_argmax_predicted =
          !me.priors.empty() && static_cast<size_t>(preds[k]) == argmax;
    }
    out->push_back(std::move(rec));
  }
}

}  // namespace

ResultSet RunEvaluation(NedScorer* model,
                        const std::vector<data::Sentence>& sentences,
                        const data::ExampleBuilder& builder,
                        const data::ExampleOptions& options,
                        const data::EntityCounts& counts,
                        int num_threads) {
  OBS_SPAN("eval.run");
  data::ExampleOptions eval_options = options;
  eval_options.include_weak_labels = false;  // evaluate true anchors only

  if (num_threads <= 0) {
    const int env = util::ThreadPool::EnvThreads();
    num_threads = env > 0 ? env : 1;
  }

  ResultSet results;
  if (num_threads <= 1) {
    std::vector<PredictionRecord> recs;
    for (const data::Sentence& sentence : sentences) {
      recs.clear();
      EvaluateSentence(model, sentence, builder, eval_options, counts, &recs);
      for (PredictionRecord& rec : recs) results.Add(std::move(rec));
    }
    return results;
  }

  // Parallel path: per-sentence buffers filled out of order, appended in
  // sentence order so the ResultSet is independent of scheduling.
  const size_t n = sentences.size();
  std::vector<std::vector<PredictionRecord>> per_sentence(n);
  util::ThreadPool::Global()->RunWorkers(num_threads, [&](int w) {
    const size_t lo = n * static_cast<size_t>(w) /
                      static_cast<size_t>(num_threads);
    const size_t hi = n * (static_cast<size_t>(w) + 1) /
                      static_cast<size_t>(num_threads);
    for (size_t i = lo; i < hi; ++i) {
      EvaluateSentence(model, sentences[i], builder, eval_options, counts,
                       &per_sentence[i]);
    }
  });
  for (std::vector<PredictionRecord>& recs : per_sentence) {
    for (PredictionRecord& rec : recs) results.Add(std::move(rec));
  }
  return results;
}

}  // namespace bootleg::eval

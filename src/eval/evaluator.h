#ifndef BOOTLEG_EVAL_EVALUATOR_H_
#define BOOTLEG_EVAL_EVALUATOR_H_

#include <functional>
#include <vector>

#include "data/corpus.h"
#include "data/example.h"
#include "kb/kb.h"

namespace bootleg::eval {

/// Interface every NED model in this repo implements (Bootleg, its
/// ablations, NED-Base, the alias-prior baseline). Predict returns, for each
/// mention of the example, the index of the chosen candidate (or -1 when the
/// candidate list is empty).
class NedScorer {
 public:
  virtual ~NedScorer() = default;
  virtual std::vector<int64_t> Predict(const data::SentenceExample& example) = 0;
};

/// Micro-averaged precision / recall / F1. With fixed gold mentions and one
/// prediction per mention these coincide with accuracy; they diverge when
/// candidate generation misses (no prediction possible), matching the paper's
/// benchmark protocol.
struct Prf {
  int64_t correct = 0;
  int64_t predicted = 0;  // mentions where the model produced a prediction
  int64_t total = 0;      // mentions in the denominator of recall

  double precision() const {
    return predicted == 0 ? 0.0 : 100.0 * static_cast<double>(correct) / predicted;
  }
  double recall() const {
    return total == 0 ? 0.0 : 100.0 * static_cast<double>(correct) / total;
  }
  double f1() const {
    const double p = precision(), r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// One evaluated mention with everything the slice analyses need.
struct PredictionRecord {
  const data::Sentence* sentence = nullptr;
  size_t mention_idx = 0;  // index into sentence->mentions
  kb::EntityId gold = kb::kInvalidId;
  kb::EntityId predicted = kb::kInvalidId;
  std::string alias;
  /// The alias candidate generation actually used: differs from `alias` when
  /// the surface was corrupted (noise injection pins the clean alias here).
  /// Empty when identical to `alias`.
  std::string candidate_alias;
  bool gold_in_candidates = false;
  int64_t num_candidates = 0;
  data::PopularityBucket bucket = data::PopularityBucket::kUnseen;
  /// True when the model's choice coincides with the candidate-prior argmax
  /// — the prior-vs-context diagnostic for the robustness slices.
  bool prior_argmax_predicted = false;
  /// Tagged by robust::TagOvershadowed: skewed alias, gold not dominant.
  bool overshadowed = false;

  bool HasPrediction() const { return predicted != kb::kInvalidId; }
  bool Correct() const { return HasPrediction() && predicted == gold; }
  /// The paper's eval filter: gold must be generatable and the mention must
  /// be genuinely ambiguous.
  bool Eligible() const { return gold_in_candidates && num_candidates > 1; }
};

/// The outcome of evaluating one model over one sentence set.
class ResultSet {
 public:
  void Add(PredictionRecord record) { records_.push_back(std::move(record)); }

  const std::vector<PredictionRecord>& records() const { return records_; }

  /// Mutable access for slice taggers (robust::TagOvershadowed).
  std::vector<PredictionRecord>* mutable_records() { return &records_; }

  /// F1 over records passing the paper's filter and the caller's predicate.
  Prf Filtered(const std::function<bool(const PredictionRecord&)>& keep) const;

  /// F1 over all eligible mentions.
  Prf Overall() const;

  /// F1 over eligible mentions in one popularity bucket.
  Prf ByBucket(data::PopularityBucket bucket) const;

  /// Unfiltered benchmark-style metrics (candidate misses hurt recall).
  Prf Benchmark() const;

  int64_t NumEligible() const;

 private:
  std::vector<PredictionRecord> records_;
};

/// Runs `model` over `sentences` (evaluating true anchors only, never weak
/// labels) and assembles the ResultSet. Bucket membership uses `counts`
/// (training-time anchor+weak-label occurrence counts).
///
/// `num_threads` shards sentences across the global thread pool: 0 reads
/// BOOTLEG_THREADS (falling back to serial), 1 is serial. Records are
/// appended in sentence order regardless of thread count, so the ResultSet is
/// identical at any parallelism. Requires Predict to be safe to call
/// concurrently — true for every inference-mode model here (inference draws
/// no RNG values and mutates no model state).
ResultSet RunEvaluation(NedScorer* model,
                        const std::vector<data::Sentence>& sentences,
                        const data::ExampleBuilder& builder,
                        const data::ExampleOptions& options,
                        const data::EntityCounts& counts,
                        int num_threads = 0);

}  // namespace bootleg::eval

#endif  // BOOTLEG_EVAL_EVALUATOR_H_

#include "eval/error_analysis.h"

#include <cctype>

#include "util/string_util.h"

namespace bootleg::eval {

const char* ErrorBucketName(ErrorBucket b) {
  switch (b) {
    case ErrorBucket::kGranularity:
      return "Granularity";
    case ErrorBucket::kNumerical:
      return "Numerical";
    case ErrorBucket::kMultiHop:
      return "Multi-hop";
    case ErrorBucket::kExactMatch:
      return "Exact Match";
  }
  return "?";
}

namespace {

/// True if `s` contains a 4-digit run (a year in the synthetic titles).
bool ContainsYear(const std::string& s) {
  int run = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      if (++run >= 4) return true;
    } else {
      run = 0;
    }
  }
  return false;
}

}  // namespace

bool InErrorBucket(const kb::KnowledgeBase& kb, const PredictionRecord& record,
                   ErrorBucket bucket) {
  switch (bucket) {
    case ErrorBucket::kGranularity:
      return record.HasPrediction() &&
             kb.SubclassRelated(record.predicted, record.gold);
    case ErrorBucket::kNumerical:
      return ContainsYear(kb.entity(record.gold).title);
    case ErrorBucket::kMultiHop: {
      const data::Sentence* s = record.sentence;
      if (s == nullptr) return false;
      for (size_t i = 0; i < s->mentions.size(); ++i) {
        if (i == record.mention_idx) continue;
        if (kb.TwoHopConnected(record.gold, s->mentions[i].gold)) return true;
      }
      return false;
    }
    case ErrorBucket::kExactMatch:
      return record.alias == kb.entity(record.gold).title;
  }
  return false;
}

std::vector<ErrorBucketReport> AnalyzeErrors(const kb::KnowledgeBase& kb,
                                             const ResultSet& results,
                                             int max_examples) {
  std::vector<ErrorBucketReport> reports;
  for (ErrorBucket bucket :
       {ErrorBucket::kGranularity, ErrorBucket::kNumerical,
        ErrorBucket::kMultiHop, ErrorBucket::kExactMatch}) {
    ErrorBucketReport report;
    report.bucket = bucket;
    for (const PredictionRecord& r : results.records()) {
      if (!r.Eligible() || r.Correct()) continue;
      const bool is_tail = r.bucket == data::PopularityBucket::kTail ||
                           r.bucket == data::PopularityBucket::kUnseen;
      ++report.overall_errors;
      if (is_tail) ++report.tail_errors;
      if (!InErrorBucket(kb, r, bucket)) continue;
      ++report.overall_errors_in_bucket;
      if (is_tail) ++report.tail_errors_in_bucket;
      if (static_cast<int>(report.examples.size()) < max_examples &&
          r.sentence != nullptr) {
        std::string text = util::Join(r.sentence->tokens, " ");
        const std::string pred_title =
            r.HasPrediction() ? kb.entity(r.predicted).title : "<none>";
        report.examples.push_back(util::StrFormat(
            "\"%s\" gold=%s predicted=%s", text.c_str(),
            kb.entity(r.gold).title.c_str(), pred_title.c_str()));
      }
    }
    reports.push_back(std::move(report));
  }
  return reports;
}

}  // namespace bootleg::eval

#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "util/thread_pool.h"

namespace bootleg::tensor {

namespace {
int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    BOOTLEG_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

// --- Parallel kernel plumbing ------------------------------------------------
// Every kernel below partitions its output rows (or flat index range) onto
// the global pool. Each output element is computed by exactly one thread with
// a fixed, partition-independent accumulation order, so results are
// bit-identical at every thread count (see docs/ARCHITECTURE.md, "Execution
// model").

/// Rows of the B panel kept hot in cache while sweeping A rows.
constexpr int64_t kKTile = 64;

/// Minimum scalar ops worth shipping to another thread. A dispatch costs a
/// queue round-trip plus a wakeup (~10µs); chunks below ~250k scalar ops
/// lose more to that than they gain, so training-sized tensors stay serial
/// and only genuinely large kernels (inference batches, benchmarks) fan out.
constexpr int64_t kParallelWork = 1 << 18;

/// ParallelFor grain: rows per chunk so a chunk costs >= kParallelWork.
int64_t RowGrain(int64_t work_per_row) {
  return std::max<int64_t>(1, kParallelWork / std::max<int64_t>(1, work_per_row));
}

/// Runs fn(lo, hi) over [0, n): fans out to the global pool only when the
/// range is large enough to amortize dispatch; otherwise invokes the functor
/// directly, paying neither the std::function conversion (which heap-allocates
/// for capturing lambdas) nor a queue round-trip. Small tensors dominate call
/// counts here, so the serial path must be free.
template <typename F>
void Dispatch(int64_t n, int64_t grain, F&& fn) {
  util::ThreadPool* pool = util::ThreadPool::Global();
  if (pool->WouldParallelize(n, grain)) {
    pool->ParallelFor(0, n, grain, fn);
  } else if (n > 0) {
    fn(0, n);
  }
}

/// C rows [i0, i1) of C = A·B, k-tiled so each B panel is reused across the
/// row block. Per output element the k-accumulation order is ascending,
/// matching MatMulReference on finite data.
void MatMulRowRange(const float* pa, const float* pb, float* pc, int64_t i0,
                    int64_t i1, int64_t k, int64_t n) {
  for (int64_t kk0 = 0; kk0 < k; kk0 += kKTile) {
    const int64_t kk1 = std::min(k, kk0 + kKTile);
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      int64_t kk = kk0;
      // 4-way k-unroll: the four adds into crow[j] chain in the same
      // ascending order as four separate iterations (identical rounding),
      // but crow is loaded and stored once instead of four times.
      for (; kk + 4 <= kk1; kk += 4) {
        const float a0 = arow[kk], a1 = arow[kk + 1];
        const float a2 = arow[kk + 2], a3 = arow[kk + 3];
        const float* b0 = pb + kk * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] = (((crow[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) +
                    a3 * b3[j];
        }
      }
      for (; kk < kk1; ++kk) {
        const float av = arow[kk];
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

/// C rows [i0, i1) of C = A·Bᵀ. A plain dot-product loop is a serial FP
/// dependency chain the compiler may not vectorize (FP addition is not
/// associative), so each dot product accumulates into kTBLanes independent
/// lanes — lane l sums terms kk ≡ l (mod kTBLanes) — and folds the lanes in
/// fixed index order. The order depends only on k, never on the thread
/// partition, so results stay bit-identical at every thread count.
constexpr int64_t kTBLanes = 16;

void MatMulTBRowRange(const float* pa, const float* pb, float* pc, int64_t i0,
                      int64_t i1, int64_t k, int64_t n) {
  if (k < kTBLanes) {
    // Short reductions (backward of vector-valued heads has k as small as 1):
    // every lane would be zero, so the fold is pure overhead. The branch
    // depends only on k, never on the thread partition.
    for (int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = pb + j * k;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
        crow[j] = acc;
      }
    }
    return;
  }
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float lanes[kTBLanes] = {0.0f};
      int64_t kk = 0;
      for (; kk + kTBLanes <= k; kk += kTBLanes) {
        for (int64_t l = 0; l < kTBLanes; ++l) {
          lanes[l] += arow[kk + l] * brow[kk + l];
        }
      }
      float tail = 0.0f;
      for (; kk < k; ++kk) tail += arow[kk] * brow[kk];
      // Tree fold: fixed halving order (16→8→4→2→1) so the result depends
      // only on k, and the upper-half adds vectorize instead of forming a
      // 16-deep serial add chain per output element.
      for (int64_t l = 0; l < 8; ++l) lanes[l] += lanes[l + 8];
      for (int64_t l = 0; l < 4; ++l) lanes[l] += lanes[l + 4];
      lanes[0] += lanes[2];
      lanes[1] += lanes[3];
      crow[j] = (lanes[0] + lanes[1]) + tail;
    }
  }
}

/// C rows [i0, i1) of C = Aᵀ·B for A [k,m]: the reduction axis walks A down a
/// column (stride m), k-tiled so B panels stay hot across the row block.
void MatMulTARowRange(const float* pa, const float* pb, float* pc, int64_t i0,
                      int64_t i1, int64_t k, int64_t m, int64_t n) {
  for (int64_t kk0 = 0; kk0 < k; kk0 += kKTile) {
    const int64_t kk1 = std::min(k, kk0 + kKTile);
    for (int64_t i = i0; i < i1; ++i) {
      float* crow = pc + i * n;
      int64_t kk = kk0;
      // Same 4-way unroll as MatMulRowRange: ascending adds, one crow
      // round-trip per four reduction steps.
      for (; kk + 4 <= kk1; kk += 4) {
        const float a0 = pa[kk * m + i], a1 = pa[(kk + 1) * m + i];
        const float a2 = pa[(kk + 2) * m + i], a3 = pa[(kk + 3) * m + i];
        const float* b0 = pb + kk * n;
        const float* b1 = b0 + n;
        const float* b2 = b1 + n;
        const float* b3 = b2 + n;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] = (((crow[j] + a0 * b0[j]) + a1 * b1[j]) + a2 * b2[j]) +
                    a3 * b3[j];
        }
      }
      for (; kk < kk1; ++kk) {
        const float av = pa[kk * m + i];
        const float* brow = pb + kk * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  }
}

}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(NumelOf(shape_)), 0.0f);
}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  BOOTLEG_CHECK_EQ(NumelOf(shape_), static_cast<int64_t>(data_.size()));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, util::Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng->Normal(0.0, stddev));
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, util::Rng* rng, float limit) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng->Uniform(-limit, limit));
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t({n, n});
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  return Tensor({n}, std::move(values));
}

Tensor Tensor::Reshape(std::vector<int64_t> shape) const {
  BOOTLEG_CHECK_EQ(NumelOf(shape), numel());
  return Tensor(std::move(shape), data_);
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

void Tensor::Add(const Tensor& other) {
  BOOTLEG_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  Dispatch(numel(), 1 << 15, [dst, src](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dst[i] += src[i];
      });
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  BOOTLEG_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  Dispatch(numel(), 1 << 15, [dst, src, alpha](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) dst[i] += alpha * src[i];
      });
}

void Tensor::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream ss;
  ss << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) ss << ",";
    ss << shape_[i];
  }
  ss << "] {";
  const int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) ss << ", ";
    ss << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) ss << ", ...";
  ss << "}";
  return ss.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  BOOTLEG_CHECK_EQ(k, b.size(0));
  Tensor c({m, n});
  if (m == 0 || k == 0 || n == 0) return c;
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  Dispatch(m, RowGrain(k * n), [pa, pb, pc, k, n](int64_t i0, int64_t i1) {
        MatMulRowRange(pa, pb, pc, i0, i1, k, n);
      });
  return c;
}

Tensor MatMulReference(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  BOOTLEG_CHECK_EQ(k, b.size(0));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order keeps the inner loop streaming over contiguous memory.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  BOOTLEG_CHECK_EQ(k, b.size(1));
  Tensor c({m, n});
  if (m == 0 || k == 0 || n == 0) return c;
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  Dispatch(m, RowGrain(k * n), [pa, pb, pc, k, n](int64_t i0, int64_t i1) {
        MatMulTBRowRange(pa, pb, pc, i0, i1, k, n);
      });
  return c;
}

Tensor MatMulTransposedBReference(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  BOOTLEG_CHECK_EQ(k, b.size(1));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[i * n + j] = acc;
    }
  }
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  BOOTLEG_CHECK_EQ(k, b.size(0));
  Tensor c({m, n});
  if (m == 0 || k == 0 || n == 0) return c;
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  Dispatch(m, RowGrain(k * n), [pa, pb, pc, k, m, n](int64_t i0, int64_t i1) {
        MatMulTARowRange(pa, pb, pc, i0, i1, k, m, n);
      });
  return c;
}

Tensor MatMulTransposedAReference(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  BOOTLEG_CHECK_EQ(k, b.size(0));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor Transpose(const Tensor& a) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1);
  Tensor t({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.Add(b);
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.Axpy(-1.0f, b);
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK(a.SameShape(b));
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  Dispatch(c.numel(), 1 << 15, [pc, pb](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) pc[i] *= pb[i];
      });
  return c;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor c = a;
  c.Scale(alpha);
  return c;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(bias.dim(), 1);
  BOOTLEG_CHECK_EQ(a.size(1), bias.size(0));
  Tensor c = a;
  const int64_t rows = a.size(0), cols = a.size(1);
  float* pc = c.data();
  const float* pb = bias.data();
  Dispatch(rows, RowGrain(cols), [pc, pb, cols](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          for (int64_t j = 0; j < cols; ++j) pc[i * cols + j] += pb[j];
        }
      });
  return c;
}

Tensor SoftmaxRows(const Tensor& a) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  const int64_t rows = a.size(0), cols = a.size(1);
  Tensor c({rows, cols});
  if (rows == 0 || cols == 0) return c;
  const float* pa = a.data();
  float* pc = c.data();
  Dispatch(// exp dominates; treat each element as ~8 scalar ops when sizing chunks.
      rows, RowGrain(cols * 8), [pa, pc, cols](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float* src = pa + i * cols;
          float* dst = pc + i * cols;
          float mx = src[0];
          for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, src[j]);
          double total = 0.0;
          for (int64_t j = 0; j < cols; ++j) {
            dst[j] = std::exp(src[j] - mx);
            total += dst[j];
          }
          const float inv = static_cast<float>(1.0 / total);
          for (int64_t j = 0; j < cols; ++j) dst[j] *= inv;
        }
      });
  return c;
}

Tensor LogSoftmaxRows(const Tensor& a) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  const int64_t rows = a.size(0), cols = a.size(1);
  Tensor c({rows, cols});
  if (rows == 0 || cols == 0) return c;
  const float* pa = a.data();
  float* pc = c.data();
  Dispatch(rows, RowGrain(cols * 8), [pa, pc, cols](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
          const float* src = pa + i * cols;
          float* dst = pc + i * cols;
          float mx = src[0];
          for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, src[j]);
          double total = 0.0;
          for (int64_t j = 0; j < cols; ++j) total += std::exp(src[j] - mx);
          const float lse = mx + static_cast<float>(std::log(total));
          for (int64_t j = 0; j < cols; ++j) dst[j] = src[j] - lse;
        }
      });
  return c;
}

Tensor Max(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK(a.SameShape(b));
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  Dispatch(c.numel(), 1 << 15, [pc, pb](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) pc[i] = std::max(pc[i], pb[i]);
      });
  return c;
}

Tensor Relu(const Tensor& a) {
  Tensor c = a;
  float* pc = c.data();
  Dispatch(c.numel(), 1 << 15, [pc](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) pc[i] = pc[i] > 0.0f ? pc[i] : 0.0f;
      });
  return c;
}

Tensor TanhT(const Tensor& a) {
  Tensor c = a;
  float* pc = c.data();
  Dispatch(c.numel(), 1 << 12, [pc](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) pc[i] = std::tanh(pc[i]);
      });
  return c;
}

Tensor Gelu(const Tensor& a) {
  Tensor c = a;
  float* pc = c.data();
  constexpr float kSqrt2OverPi = 0.7978845608f;
  Dispatch(c.numel(), 1 << 12, [pc](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          const float v = pc[i];
          const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
          pc[i] = 0.5f * v * (1.0f + std::tanh(inner));
        }
      });
  return c;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  BOOTLEG_CHECK(!parts.empty());
  const int64_t rows = parts[0].size(0);
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    BOOTLEG_CHECK_EQ(p.dim(), 2);
    BOOTLEG_CHECK_EQ(p.size(0), rows);
    total_cols += p.size(1);
  }
  Tensor c({rows, total_cols});
  int64_t off = 0;
  for (const Tensor& p : parts) {
    const int64_t cols = p.size(1);
    for (int64_t i = 0; i < rows; ++i) {
      const float* src = p.data() + i * cols;
      float* dst = c.data() + i * total_cols + off;
      for (int64_t j = 0; j < cols; ++j) dst[j] = src[j];
    }
    off += cols;
  }
  return c;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  BOOTLEG_CHECK(!parts.empty());
  const int64_t cols = parts[0].size(1);
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    BOOTLEG_CHECK_EQ(p.dim(), 2);
    BOOTLEG_CHECK_EQ(p.size(1), cols);
    total_rows += p.size(0);
  }
  Tensor c({total_rows, cols});
  int64_t off = 0;
  for (const Tensor& p : parts) {
    const int64_t n = p.numel();
    float* dst = c.data() + off;
    for (int64_t i = 0; i < n; ++i) dst[i] = p.data()[i];
    off += n;
  }
  return c;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK(start >= 0 && len >= 0 && start + len <= a.size(1));
  const int64_t rows = a.size(0), cols = a.size(1);
  Tensor c({rows, len});
  for (int64_t i = 0; i < rows; ++i) {
    const float* src = a.data() + i * cols + start;
    float* dst = c.data() + i * len;
    for (int64_t j = 0; j < len; ++j) dst[j] = src[j];
  }
  return c;
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK(start >= 0 && len >= 0 && start + len <= a.size(0));
  const int64_t cols = a.size(1);
  Tensor c({len, cols});
  const float* src = a.data() + start * cols;
  float* dst = c.data();
  for (int64_t i = 0; i < len * cols; ++i) dst[i] = src[i];
  return c;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& ids) {
  BOOTLEG_CHECK_EQ(table.dim(), 2);
  const int64_t cols = table.size(1);
  Tensor c({static_cast<int64_t>(ids.size()), cols});
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    BOOTLEG_CHECK(id >= 0 && id < table.size(0));
    const float* src = table.data() + id * cols;
    float* dst = c.data() + static_cast<int64_t>(i) * cols;
    for (int64_t j = 0; j < cols; ++j) dst[j] = src[j];
  }
  return c;
}

Tensor LayerNormRows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                     float eps, Tensor* xhat, Tensor* inv_std) {
  BOOTLEG_CHECK_EQ(x.dim(), 2);
  const int64_t rows = x.size(0), cols = x.size(1);
  BOOTLEG_CHECK_EQ(gamma.numel(), cols);
  BOOTLEG_CHECK_EQ(beta.numel(), cols);
  if (xhat != nullptr) *xhat = Tensor({rows, cols});
  if (inv_std != nullptr) *inv_std = Tensor({rows});
  Tensor out({rows, cols});
  const float* xp = x.data();
  const float* gp = gamma.data();
  const float* bp = beta.data();
  float* xhp = xhat != nullptr ? xhat->data() : nullptr;
  float* isp = inv_std != nullptr ? inv_std->data() : nullptr;
  float* op = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    const float* xrow = xp + i * cols;
    double mean = 0.0;
    for (int64_t j = 0; j < cols; ++j) mean += xrow[j];
    mean /= cols;
    double var = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      const double d = xrow[j] - mean;
      var += d * d;
    }
    var /= cols;
    const float is = static_cast<float>(1.0 / std::sqrt(var + eps));
    if (isp != nullptr) isp[i] = is;
    const float meanf = static_cast<float>(mean);
    float* orow = op + i * cols;
    for (int64_t j = 0; j < cols; ++j) {
      const float xh = (xrow[j] - meanf) * is;
      if (xhp != nullptr) xhp[i * cols + j] = xh;
      orow[j] = xh * gp[j] + bp[j];
    }
  }
  return out;
}

Tensor AddScaledIdentity(const Tensor& k, float w) {
  BOOTLEG_CHECK_EQ(k.dim(), 2);
  BOOTLEG_CHECK_EQ(k.size(0), k.size(1));
  Tensor out = k;
  const int64_t n = k.size(0);
  for (int64_t i = 0; i < n; ++i) out.at(i, i) += w;
  return out;
}

int64_t ArgMax(const Tensor& a) {
  BOOTLEG_CHECK_GT(a.numel(), 0);
  int64_t best = 0;
  for (int64_t i = 1; i < a.numel(); ++i) {
    if (a.at(i) > a.at(best)) best = i;
  }
  return best;
}

float Norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.vec()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

bool AllFinite(const Tensor& a) {
  for (float v : a.vec()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace bootleg::tensor

#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace bootleg::tensor {

namespace {
int64_t NumelOf(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    BOOTLEG_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int64_t> shape) : shape_(std::move(shape)) {
  data_.assign(static_cast<size_t>(NumelOf(shape_)), 0.0f);
}

Tensor::Tensor(std::vector<int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  BOOTLEG_CHECK_EQ(NumelOf(shape_), static_cast<int64_t>(data_.size()));
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Randn(std::vector<int64_t> shape, util::Rng* rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng->Normal(0.0, stddev));
  return t;
}

Tensor Tensor::RandUniform(std::vector<int64_t> shape, util::Rng* rng, float limit) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = static_cast<float>(rng->Uniform(-limit, limit));
  return t;
}

Tensor Tensor::Eye(int64_t n) {
  Tensor t({n, n});
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::FromVector(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  return Tensor({n}, std::move(values));
}

Tensor Tensor::Reshape(std::vector<int64_t> shape) const {
  BOOTLEG_CHECK_EQ(NumelOf(shape), numel());
  return Tensor(std::move(shape), data_);
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

void Tensor::Add(const Tensor& other) {
  BOOTLEG_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

void Tensor::Axpy(float alpha, const Tensor& other) {
  BOOTLEG_CHECK(SameShape(other));
  const float* src = other.data();
  float* dst = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Tensor::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

float Tensor::Sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::ostringstream ss;
  ss << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) ss << ",";
    ss << shape_[i];
  }
  ss << "] {";
  const int64_t n = std::min<int64_t>(numel(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) ss << ", ";
    ss << data_[static_cast<size_t>(i)];
  }
  if (numel() > n) ss << ", ...";
  ss << "}";
  return ss.str();
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  BOOTLEG_CHECK_EQ(k, b.size(0));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj loop order keeps the inner loop streaming over contiguous memory.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransposedB(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t m = a.size(0), k = a.size(1), n = b.size(0);
  BOOTLEG_CHECK_EQ(k, b.size(1));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      pc[i * n + j] = acc;
    }
  }
  return c;
}

Tensor MatMulTransposedA(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(b.dim(), 2);
  const int64_t k = a.size(0), m = a.size(1), n = b.size(1);
  BOOTLEG_CHECK_EQ(k, b.size(0));
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor Transpose(const Tensor& a) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  const int64_t m = a.size(0), n = a.size(1);
  Tensor t({n, m});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) t.at(j, i) = a.at(i, j);
  }
  return t;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.Add(b);
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  c.Axpy(-1.0f, b);
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK(a.SameShape(b));
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  const int64_t n = c.numel();
  for (int64_t i = 0; i < n; ++i) pc[i] *= pb[i];
  return c;
}

Tensor Scale(const Tensor& a, float alpha) {
  Tensor c = a;
  c.Scale(alpha);
  return c;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK_EQ(bias.dim(), 1);
  BOOTLEG_CHECK_EQ(a.size(1), bias.size(0));
  Tensor c = a;
  const int64_t rows = a.size(0), cols = a.size(1);
  float* pc = c.data();
  const float* pb = bias.data();
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) pc[i * cols + j] += pb[j];
  }
  return c;
}

Tensor SoftmaxRows(const Tensor& a) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  const int64_t rows = a.size(0), cols = a.size(1);
  Tensor c({rows, cols});
  for (int64_t i = 0; i < rows; ++i) {
    const float* src = a.data() + i * cols;
    float* dst = c.data() + i * cols;
    float mx = src[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, src[j]);
    double total = 0.0;
    for (int64_t j = 0; j < cols; ++j) {
      dst[j] = std::exp(src[j] - mx);
      total += dst[j];
    }
    const float inv = static_cast<float>(1.0 / total);
    for (int64_t j = 0; j < cols; ++j) dst[j] *= inv;
  }
  return c;
}

Tensor LogSoftmaxRows(const Tensor& a) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  const int64_t rows = a.size(0), cols = a.size(1);
  Tensor c({rows, cols});
  for (int64_t i = 0; i < rows; ++i) {
    const float* src = a.data() + i * cols;
    float* dst = c.data() + i * cols;
    float mx = src[0];
    for (int64_t j = 1; j < cols; ++j) mx = std::max(mx, src[j]);
    double total = 0.0;
    for (int64_t j = 0; j < cols; ++j) total += std::exp(src[j] - mx);
    const float lse = mx + static_cast<float>(std::log(total));
    for (int64_t j = 0; j < cols; ++j) dst[j] = src[j] - lse;
  }
  return c;
}

Tensor Max(const Tensor& a, const Tensor& b) {
  BOOTLEG_CHECK(a.SameShape(b));
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  const int64_t n = c.numel();
  for (int64_t i = 0; i < n; ++i) pc[i] = std::max(pc[i], pb[i]);
  return c;
}

Tensor Relu(const Tensor& a) {
  Tensor c = a;
  for (float& v : c.vec()) v = v > 0.0f ? v : 0.0f;
  return c;
}

Tensor TanhT(const Tensor& a) {
  Tensor c = a;
  for (float& v : c.vec()) v = std::tanh(v);
  return c;
}

Tensor Gelu(const Tensor& a) {
  Tensor c = a;
  constexpr float kSqrt2OverPi = 0.7978845608f;
  for (float& v : c.vec()) {
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(inner));
  }
  return c;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  BOOTLEG_CHECK(!parts.empty());
  const int64_t rows = parts[0].size(0);
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    BOOTLEG_CHECK_EQ(p.dim(), 2);
    BOOTLEG_CHECK_EQ(p.size(0), rows);
    total_cols += p.size(1);
  }
  Tensor c({rows, total_cols});
  int64_t off = 0;
  for (const Tensor& p : parts) {
    const int64_t cols = p.size(1);
    for (int64_t i = 0; i < rows; ++i) {
      const float* src = p.data() + i * cols;
      float* dst = c.data() + i * total_cols + off;
      for (int64_t j = 0; j < cols; ++j) dst[j] = src[j];
    }
    off += cols;
  }
  return c;
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  BOOTLEG_CHECK(!parts.empty());
  const int64_t cols = parts[0].size(1);
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    BOOTLEG_CHECK_EQ(p.dim(), 2);
    BOOTLEG_CHECK_EQ(p.size(1), cols);
    total_rows += p.size(0);
  }
  Tensor c({total_rows, cols});
  int64_t off = 0;
  for (const Tensor& p : parts) {
    const int64_t n = p.numel();
    float* dst = c.data() + off;
    for (int64_t i = 0; i < n; ++i) dst[i] = p.data()[i];
    off += n;
  }
  return c;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK(start >= 0 && len >= 0 && start + len <= a.size(1));
  const int64_t rows = a.size(0), cols = a.size(1);
  Tensor c({rows, len});
  for (int64_t i = 0; i < rows; ++i) {
    const float* src = a.data() + i * cols + start;
    float* dst = c.data() + i * len;
    for (int64_t j = 0; j < len; ++j) dst[j] = src[j];
  }
  return c;
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  BOOTLEG_CHECK_EQ(a.dim(), 2);
  BOOTLEG_CHECK(start >= 0 && len >= 0 && start + len <= a.size(0));
  const int64_t cols = a.size(1);
  Tensor c({len, cols});
  const float* src = a.data() + start * cols;
  float* dst = c.data();
  for (int64_t i = 0; i < len * cols; ++i) dst[i] = src[i];
  return c;
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& ids) {
  BOOTLEG_CHECK_EQ(table.dim(), 2);
  const int64_t cols = table.size(1);
  Tensor c({static_cast<int64_t>(ids.size()), cols});
  for (size_t i = 0; i < ids.size(); ++i) {
    const int64_t id = ids[i];
    BOOTLEG_CHECK(id >= 0 && id < table.size(0));
    const float* src = table.data() + id * cols;
    float* dst = c.data() + static_cast<int64_t>(i) * cols;
    for (int64_t j = 0; j < cols; ++j) dst[j] = src[j];
  }
  return c;
}

int64_t ArgMax(const Tensor& a) {
  BOOTLEG_CHECK_GT(a.numel(), 0);
  int64_t best = 0;
  for (int64_t i = 1; i < a.numel(); ++i) {
    if (a.at(i) > a.at(best)) best = i;
  }
  return best;
}

float Norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.vec()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

bool AllFinite(const Tensor& a) {
  for (float v : a.vec()) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace bootleg::tensor

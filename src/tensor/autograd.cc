#include "tensor/autograd.h"

#include <cmath>
#include <unordered_set>

namespace bootleg::tensor {

using internal_autograd::Node;

Var Var::Leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return FromNode(std::move(node));
}

Var Var::FromNode(std::shared_ptr<Node> node) {
  Var v;
  v.node_ = std::move(node);
  return v;
}

namespace {

/// Creates an op-output node. If no input requires grad, the backward closure
/// is dropped so the tape stays shallow for inference.
Var MakeOp(Tensor value, std::vector<Var> inputs, std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  bool any = false;
  for (const Var& v : inputs) {
    BOOTLEG_CHECK(v.defined());
    any = any || v.requires_grad();
    node->inputs.push_back(v.node());
  }
  node->requires_grad = any;
  if (any) node->backward = std::move(backward);
  return Var::FromNode(std::move(node));
}

void TopoSort(Node* root, std::vector<Node*>* order) {
  // Iterative post-order DFS (graphs can be thousands of nodes deep).
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->inputs.size()) {
      Node* child = node->inputs[idx].get();
      ++idx;
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Var& loss) {
  BOOTLEG_CHECK(loss.defined());
  BOOTLEG_CHECK_EQ(loss.value().numel(), 1);
  if (!loss.requires_grad()) return;
  Node* root = loss.node().get();
  root->EnsureGrad();
  root->grad.Fill(1.0f);

  std::vector<Node*> order;
  TopoSort(root, &order);
  // Post-order yields inputs before outputs; reverse for backprop.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward && !node->grad.empty()) {
      node->backward(*node);
    }
  }
}

namespace {
thread_local GradScope* t_grad_scope = nullptr;
}  // namespace

GradScope::Activation::Activation(GradScope* scope) : prev_(t_grad_scope) {
  t_grad_scope = scope;
}

GradScope::Activation::~Activation() { t_grad_scope = prev_; }

GradScope* GradScope::Current() { return t_grad_scope; }

Tensor* GradScope::DenseGrad(internal_autograd::Node* node) {
  auto [it, inserted] = dense_.try_emplace(node);
  if (inserted) it->second = Tensor(node->value.shape());
  return &it->second;
}

SparseRowGrads* GradScope::SparseGrad(SparseRowGrads* target) {
  return &sparse_[target];
}

void GradScope::ReduceInto() {
  // Buffers are retained (zeroed, not erased) between reductions: the dense
  // keys are parameter nodes that outlive the scope, and reusing the
  // allocation avoids a hash insert + Tensor allocation per parameter per
  // batch in the training loop.
  for (auto& [node, grad] : dense_) {
    node->EnsureGrad();
    node->grad.Add(grad);
    grad.Fill(0.0f);
  }
  for (auto& [target, rows] : sparse_) {
    for (auto& [row, grad] : rows) {
      auto [it, inserted] = target->try_emplace(row, std::move(grad));
      if (!inserted) {
        float* dst = it->second.data();
        const float* src = grad.data();
        for (size_t j = 0; j < it->second.size(); ++j) dst[j] += src[j];
      }
    }
    rows.clear();
  }
}

namespace {
/// True for gradient sinks: nodes backprop stops at (parameters and other
/// leaves). Their accumulation is redirected into the active GradScope so
/// concurrent Backward calls never write shared state.
bool IsLeaf(const Node* node) { return !node->backward; }

/// Accumulates `delta` into input slot `i` of `node` if that input wants grad.
void AccumInto(Node& node, size_t i, const Tensor& delta) {
  Node* in = node.inputs[i].get();
  if (!in->requires_grad) return;
  if (IsLeaf(in)) {
    if (GradScope* scope = GradScope::Current()) {
      scope->DenseGrad(in)->Add(delta);
      return;
    }
  }
  in->EnsureGrad();
  in->grad.Add(delta);
}
}  // namespace

Var MatMul(const Var& a, const Var& b) {
  Tensor out = MatMul(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& n) {
    const Tensor& g = n.grad;
    const Tensor& av = n.inputs[0]->value;
    const Tensor& bv = n.inputs[1]->value;
    if (n.inputs[0]->requires_grad) {
      AccumInto(n, 0, MatMulTransposedB(g, bv));  // dA = dC · Bᵀ
    }
    if (n.inputs[1]->requires_grad) {
      AccumInto(n, 1, MatMulTransposedA(av, g));  // dB = Aᵀ · dC
    }
  });
}

Var MatMulTransposedB(const Var& a, const Var& b) {
  Tensor out = MatMulTransposedB(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& n) {
    const Tensor& g = n.grad;
    const Tensor& av = n.inputs[0]->value;
    const Tensor& bv = n.inputs[1]->value;
    if (n.inputs[0]->requires_grad) {
      AccumInto(n, 0, MatMul(g, bv));  // dA = dC · B
    }
    if (n.inputs[1]->requires_grad) {
      AccumInto(n, 1, MatMulTransposedA(g, av));  // dB = dCᵀ · A
    }
  });
}

Var Add(const Var& a, const Var& b) {
  Tensor out = Add(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& n) {
    AccumInto(n, 0, n.grad);
    AccumInto(n, 1, n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = Sub(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& n) {
    AccumInto(n, 0, n.grad);
    AccumInto(n, 1, Scale(n.grad, -1.0f));
  });
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = Mul(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& n) {
    AccumInto(n, 0, Mul(n.grad, n.inputs[1]->value));
    AccumInto(n, 1, Mul(n.grad, n.inputs[0]->value));
  });
}

Var MulConst(const Var& a, const Tensor& mask) {
  Tensor out = Mul(a.value(), mask);
  return MakeOp(std::move(out), {a}, [mask](Node& n) {
    AccumInto(n, 0, Mul(n.grad, mask));
  });
}

Var Scale(const Var& a, float alpha) {
  Tensor out = Scale(a.value(), alpha);
  return MakeOp(std::move(out), {a}, [alpha](Node& n) {
    AccumInto(n, 0, Scale(n.grad, alpha));
  });
}

Var AddRowBroadcast(const Var& a, const Var& bias) {
  Tensor out = AddRowBroadcast(a.value(), bias.value());
  return MakeOp(std::move(out), {a, bias}, [](Node& n) {
    AccumInto(n, 0, n.grad);
    if (n.inputs[1]->requires_grad) {
      const Tensor& g = n.grad;
      const int64_t rows = g.size(0), cols = g.size(1);
      Tensor db({cols});
      float* dbp = db.data();
      const float* gp = g.data();
      for (int64_t i = 0; i < rows; ++i) {
        const float* grow = gp + i * cols;
        for (int64_t j = 0; j < cols; ++j) dbp[j] += grow[j];
      }
      AccumInto(n, 1, db);
    }
  });
}

Var Relu(const Var& a) {
  Tensor out = Relu(a.value());
  return MakeOp(std::move(out), {a}, [](Node& n) {
    Tensor d = n.grad;
    float* dp = d.data();
    const float* xp = n.inputs[0]->value.data();
    const int64_t numel = d.numel();
    for (int64_t i = 0; i < numel; ++i) {
      if (xp[i] <= 0.0f) dp[i] = 0.0f;
    }
    AccumInto(n, 0, d);
  });
}

Var TanhV(const Var& a) {
  Tensor out = TanhT(a.value());
  return MakeOp(std::move(out), {a}, [](Node& n) {
    Tensor d = n.grad;
    float* dp = d.data();
    const float* yp = n.value.data();
    const int64_t numel = d.numel();
    for (int64_t i = 0; i < numel; ++i) dp[i] *= 1.0f - yp[i] * yp[i];
    AccumInto(n, 0, d);
  });
}

Var Gelu(const Var& a) {
  Tensor out = Gelu(a.value());
  return MakeOp(std::move(out), {a}, [](Node& n) {
    constexpr float kC = 0.7978845608f;  // sqrt(2/pi)
    Tensor d = n.grad;
    float* dp = d.data();
    const float* xp = n.inputs[0]->value.data();
    const int64_t numel = d.numel();
    for (int64_t i = 0; i < numel; ++i) {
      const float v = xp[i];
      const float inner = kC * (v + 0.044715f * v * v * v);
      const float t = std::tanh(inner);
      const float dinner = kC * (1.0f + 3.0f * 0.044715f * v * v);
      const float dgelu = 0.5f * (1.0f + t) + 0.5f * v * (1.0f - t * t) * dinner;
      dp[i] *= dgelu;
    }
    AccumInto(n, 0, d);
  });
}

Var SoftmaxRows(const Var& a) {
  Tensor out = SoftmaxRows(a.value());
  return MakeOp(std::move(out), {a}, [](Node& n) {
    const Tensor& y = n.value;
    const Tensor& g = n.grad;
    const int64_t rows = y.size(0), cols = y.size(1);
    Tensor d({rows, cols});
    const float* yp = y.data();
    const float* gp = g.data();
    float* dp = d.data();
    for (int64_t i = 0; i < rows; ++i) {
      const float* yrow = yp + i * cols;
      const float* grow = gp + i * cols;
      float* drow = dp + i * cols;
      double dot = 0.0;
      for (int64_t j = 0; j < cols; ++j) dot += static_cast<double>(grow[j]) * yrow[j];
      const float dotf = static_cast<float>(dot);
      for (int64_t j = 0; j < cols; ++j) {
        drow[j] = (grow[j] - dotf) * yrow[j];
      }
    }
    AccumInto(n, 0, d);
  });
}

Var LogSoftmaxRows(const Var& a) {
  Tensor out = LogSoftmaxRows(a.value());
  return MakeOp(std::move(out), {a}, [](Node& n) {
    const Tensor& logp = n.value;
    const Tensor& g = n.grad;
    const int64_t rows = logp.size(0), cols = logp.size(1);
    Tensor d({rows, cols});
    const float* lp = logp.data();
    const float* gp = g.data();
    float* dp = d.data();
    for (int64_t i = 0; i < rows; ++i) {
      const float* lrow = lp + i * cols;
      const float* grow = gp + i * cols;
      float* drow = dp + i * cols;
      double gsum = 0.0;
      for (int64_t j = 0; j < cols; ++j) gsum += grow[j];
      const float gsumf = static_cast<float>(gsum);
      for (int64_t j = 0; j < cols; ++j) {
        drow[j] = grow[j] - gsumf * std::exp(lrow[j]);
      }
    }
    AccumInto(n, 0, d);
  });
}

Var Transpose(const Var& a) {
  Tensor out = Transpose(a.value());
  return MakeOp(std::move(out), {a}, [](Node& n) {
    AccumInto(n, 0, Transpose(n.grad));
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  std::vector<Tensor> vals;
  vals.reserve(parts.size());
  for (const Var& p : parts) vals.push_back(p.value());
  Tensor out = ConcatCols(vals);
  std::vector<int64_t> widths;
  widths.reserve(parts.size());
  for (const Var& p : parts) widths.push_back(p.value().size(1));
  return MakeOp(std::move(out), parts, [widths](Node& n) {
    int64_t off = 0;
    for (size_t i = 0; i < widths.size(); ++i) {
      AccumInto(n, i, SliceCols(n.grad, off, widths[i]));
      off += widths[i];
    }
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  std::vector<Tensor> vals;
  vals.reserve(parts.size());
  for (const Var& p : parts) vals.push_back(p.value());
  Tensor out = ConcatRows(vals);
  std::vector<int64_t> heights;
  heights.reserve(parts.size());
  for (const Var& p : parts) heights.push_back(p.value().size(0));
  return MakeOp(std::move(out), parts, [heights](Node& n) {
    int64_t off = 0;
    for (size_t i = 0; i < heights.size(); ++i) {
      AccumInto(n, i, SliceRows(n.grad, off, heights[i]));
      off += heights[i];
    }
  });
}

Var SliceCols(const Var& a, int64_t start, int64_t len) {
  Tensor out = SliceCols(a.value(), start, len);
  const int64_t rows = a.value().size(0), cols = a.value().size(1);
  return MakeOp(std::move(out), {a}, [start, len, rows, cols](Node& n) {
    Tensor d({rows, cols});
    float* dp = d.data();
    const float* gp = n.grad.data();
    for (int64_t i = 0; i < rows; ++i) {
      float* drow = dp + i * cols + start;
      const float* grow = gp + i * len;
      for (int64_t j = 0; j < len; ++j) drow[j] = grow[j];
    }
    AccumInto(n, 0, d);
  });
}

Var SliceRows(const Var& a, int64_t start, int64_t len) {
  Tensor out = SliceRows(a.value(), start, len);
  const int64_t rows = a.value().size(0), cols = a.value().size(1);
  return MakeOp(std::move(out), {a}, [start, len, rows, cols](Node& n) {
    Tensor d({rows, cols});
    std::copy(n.grad.data(), n.grad.data() + len * cols,
              d.data() + start * cols);
    AccumInto(n, 0, d);
  });
}

Var GatherRows(const Var& table, const std::vector<int64_t>& ids) {
  Tensor out = GatherRows(table.value(), ids);
  return MakeOp(std::move(out), {table}, [ids](Node& n) {
    if (!n.inputs[0]->requires_grad) return;
    Node* t = n.inputs[0].get();
    const int64_t cols = t->value.size(1);
    Tensor* sink = nullptr;
    if (IsLeaf(t)) {
      if (GradScope* scope = GradScope::Current()) sink = scope->DenseGrad(t);
    }
    if (sink == nullptr) {
      t->EnsureGrad();
      sink = &t->grad;
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      float* dst = sink->data() + ids[i] * cols;
      const float* src = n.grad.data() + static_cast<int64_t>(i) * cols;
      for (int64_t j = 0; j < cols; ++j) dst[j] += src[j];
    }
  });
}

Var Sum(const Var& a) {
  Tensor out({1});
  out.at(0) = a.value().Sum();
  return MakeOp(std::move(out), {a}, [](Node& n) {
    Tensor d(n.inputs[0]->value.shape());
    d.Fill(n.grad.at(0));
    AccumInto(n, 0, d);
  });
}

Var Mean(const Var& a) {
  const int64_t count = a.value().numel();
  BOOTLEG_CHECK_GT(count, 0);
  Tensor out({1});
  out.at(0) = a.value().Sum() / static_cast<float>(count);
  return MakeOp(std::move(out), {a}, [count](Node& n) {
    Tensor d(n.inputs[0]->value.shape());
    d.Fill(n.grad.at(0) / static_cast<float>(count));
    AccumInto(n, 0, d);
  });
}

Var Max(const Var& a, const Var& b) {
  Tensor out = Max(a.value(), b.value());
  return MakeOp(std::move(out), {a, b}, [](Node& n) {
    const Tensor& av = n.inputs[0]->value;
    const Tensor& bv = n.inputs[1]->value;
    Tensor da(av.shape());
    Tensor db(bv.shape());
    for (int64_t i = 0; i < av.numel(); ++i) {
      if (av.at(i) >= bv.at(i)) {
        da.at(i) = n.grad.at(i);
      } else {
        db.at(i) = n.grad.at(i);
      }
    }
    AccumInto(n, 0, da);
    AccumInto(n, 1, db);
  });
}

Var LayerNorm(const Var& x, const Var& gamma, const Var& beta, float eps) {
  const Tensor& xv = x.value();
  BOOTLEG_CHECK_EQ(xv.dim(), 2);
  const int64_t rows = xv.size(0), cols = xv.size(1);
  BOOTLEG_CHECK_EQ(gamma.value().numel(), cols);
  BOOTLEG_CHECK_EQ(beta.value().numel(), cols);

  Tensor xhat;
  Tensor inv_std;
  Tensor out =
      LayerNormRows(xv, gamma.value(), beta.value(), eps, &xhat, &inv_std);

  return MakeOp(std::move(out), {x, gamma, beta},
                [xhat = std::move(xhat), inv_std = std::move(inv_std), rows,
                 cols](Node& n) {
                  const float* g = n.grad.data();
                  const float* gam = n.inputs[1]->value.data();
                  const float* xh = xhat.data();
                  const float* is = inv_std.data();
                  if (n.inputs[1]->requires_grad || n.inputs[2]->requires_grad) {
                    Tensor dgamma({cols});
                    Tensor dbeta({cols});
                    float* dg = dgamma.data();
                    float* db = dbeta.data();
                    for (int64_t i = 0; i < rows; ++i) {
                      const float* grow = g + i * cols;
                      const float* xhrow = xh + i * cols;
                      for (int64_t j = 0; j < cols; ++j) {
                        dg[j] += grow[j] * xhrow[j];
                        db[j] += grow[j];
                      }
                    }
                    AccumInto(n, 1, dgamma);
                    AccumInto(n, 2, dbeta);
                  }
                  if (n.inputs[0]->requires_grad) {
                    Tensor dx({rows, cols});
                    float* dxp = dx.data();
                    for (int64_t i = 0; i < rows; ++i) {
                      const float* grow = g + i * cols;
                      const float* xhrow = xh + i * cols;
                      float* dxrow = dxp + i * cols;
                      double m1 = 0.0, m2 = 0.0;
                      for (int64_t j = 0; j < cols; ++j) {
                        const float dxh = grow[j] * gam[j];
                        m1 += dxh;
                        m2 += static_cast<double>(dxh) * xhrow[j];
                      }
                      const float m1f = static_cast<float>(m1 / cols);
                      const float m2f = static_cast<float>(m2 / cols);
                      for (int64_t j = 0; j < cols; ++j) {
                        const float dxh = grow[j] * gam[j];
                        dxrow[j] = is[i] * (dxh - m1f - xhrow[j] * m2f);
                      }
                    }
                    AccumInto(n, 0, dx);
                  }
                });
}

Var CrossEntropy(const Var& logits, const std::vector<int64_t>& targets) {
  const Tensor& lv = logits.value();
  BOOTLEG_CHECK_EQ(lv.dim(), 2);
  const int64_t rows = lv.size(0), cols = lv.size(1);
  BOOTLEG_CHECK_EQ(rows, static_cast<int64_t>(targets.size()));
  Tensor probs = SoftmaxRows(lv);
  double loss = 0.0;
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t t = targets[static_cast<size_t>(i)];
    BOOTLEG_CHECK(t >= 0 && t < cols);
    loss -= std::log(std::max(probs.at(i, t), 1e-12f));
  }
  Tensor out({1});
  out.at(0) = static_cast<float>(loss / rows);
  return MakeOp(std::move(out), {logits},
                [probs = std::move(probs), targets, rows, cols](Node& n) {
                  const float scale = n.grad.at(0) / static_cast<float>(rows);
                  Tensor d({rows, cols});
                  for (int64_t i = 0; i < rows; ++i) {
                    for (int64_t j = 0; j < cols; ++j) {
                      float v = probs.at(i, j);
                      if (j == targets[static_cast<size_t>(i)]) v -= 1.0f;
                      d.at(i, j) = v * scale;
                    }
                  }
                  AccumInto(n, 0, d);
                });
}

Var AddScaledIdentity(const Tensor& k, const Var& w) {
  BOOTLEG_CHECK_EQ(w.value().numel(), 1);
  const int64_t n_dim = k.size(0);
  Tensor out = AddScaledIdentity(k, w.value().at(0));
  return MakeOp(std::move(out), {w}, [n_dim](Node& n) {
    if (!n.inputs[0]->requires_grad) return;
    float tr = 0.0f;
    for (int64_t i = 0; i < n_dim; ++i) tr += n.grad.at(i, i);
    Tensor dw({1});
    dw.at(0) = tr;
    AccumInto(n, 0, dw);
  });
}

Var MeanRows(const Var& a) {
  const Tensor& av = a.value();
  BOOTLEG_CHECK_EQ(av.dim(), 2);
  const int64_t rows = av.size(0), cols = av.size(1);
  Tensor out({1, cols});
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) out.at(0, j) += av.at(i, j);
  }
  out.Scale(1.0f / static_cast<float>(rows));
  return MakeOp(std::move(out), {a}, [rows, cols](Node& n) {
    Tensor d({rows, cols});
    const float inv = 1.0f / static_cast<float>(rows);
    for (int64_t i = 0; i < rows; ++i) {
      for (int64_t j = 0; j < cols; ++j) d.at(i, j) = n.grad.at(0, j) * inv;
    }
    AccumInto(n, 0, d);
  });
}

}  // namespace bootleg::tensor

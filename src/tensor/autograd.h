#ifndef BOOTLEG_TENSOR_AUTOGRAD_H_
#define BOOTLEG_TENSOR_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace bootleg::tensor {

namespace internal_autograd {

/// One node of the dynamically-built computation tape.
struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily by EnsureGrad()
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  /// Accumulates input gradients from this node's grad. Set only when
  /// requires_grad is true and the op is differentiable.
  std::function<void(Node&)> backward;

  void EnsureGrad() {
    if (grad.empty() && value.numel() > 0) grad = Tensor(value.shape());
  }
};

}  // namespace internal_autograd

/// Handle to a tape node. Vars are cheap shared references; the tape is the
/// graph of Vars reachable from a loss. Reverse-mode differentiation runs
/// with Backward(loss).
class Var {
 public:
  using Node = internal_autograd::Node;

  Var() = default;

  /// A leaf holding `value`. Leaves with requires_grad=true are parameters.
  static Var Leaf(Tensor value, bool requires_grad = false);

  /// A constant (no gradient ever flows into it).
  static Var Constant(Tensor value) { return Leaf(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const {
    BOOTLEG_CHECK(defined());
    return node_->value;
  }
  Tensor& mutable_value() {
    BOOTLEG_CHECK(defined());
    return node_->value;
  }
  const Tensor& grad() const {
    BOOTLEG_CHECK(defined());
    return node_->grad;
  }
  Tensor& mutable_grad() {
    BOOTLEG_CHECK(defined());
    node_->EnsureGrad();
    return node_->grad;
  }
  bool requires_grad() const { return defined() && node_->requires_grad; }

  void ZeroGrad() {
    if (defined() && !node_->grad.empty()) node_->grad.Fill(0.0f);
  }

  /// Internal: tape access for op implementations.
  const std::shared_ptr<Node>& node() const { return node_; }

  /// Internal: constructs from an existing node.
  static Var FromNode(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

/// Runs reverse-mode autodiff from scalar `loss` (numel()==1), accumulating
/// into the .grad of every reachable node with requires_grad.
void Backward(const Var& loss);

// --- Differentiable ops -----------------------------------------------------

Var MatMul(const Var& a, const Var& b);
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
/// Elementwise multiply by a constant tensor (dropout / regularization masks).
Var MulConst(const Var& a, const Tensor& mask);
Var Scale(const Var& a, float alpha);
/// a [n,d] + bias [d].
Var AddRowBroadcast(const Var& a, const Var& bias);
Var Relu(const Var& a);
Var TanhV(const Var& a);
Var Gelu(const Var& a);
Var SoftmaxRows(const Var& a);
Var LogSoftmaxRows(const Var& a);
Var Transpose(const Var& a);
Var ConcatCols(const std::vector<Var>& parts);
Var ConcatRows(const std::vector<Var>& parts);
Var SliceCols(const Var& a, int64_t start, int64_t len);
Var SliceRows(const Var& a, int64_t start, int64_t len);
/// Differentiable row gather from a parameter table (dense scatter-add grad).
Var GatherRows(const Var& table, const std::vector<int64_t>& ids);
Var Sum(const Var& a);
Var Mean(const Var& a);
/// Elementwise max; gradient follows the winning element (ties go to `a`).
Var Max(const Var& a, const Var& b);
/// Row-wise layer normalization with learned gain/bias (both shape [d]).
Var LayerNorm(const Var& x, const Var& gamma, const Var& beta, float eps = 1e-5f);
/// Mean negative log-likelihood of `targets` under row-wise softmax(logits).
Var CrossEntropy(const Var& logits, const std::vector<int64_t>& targets);
/// K + w·I for constant square K and learned scalar w (shape [1]).
Var AddScaledIdentity(const Tensor& k, const Var& w);
/// Mean of the rows of a 2-D input → [1, d]. Used by additive attention.
Var MeanRows(const Var& a);

}  // namespace bootleg::tensor

#endif  // BOOTLEG_TENSOR_AUTOGRAD_H_

#ifndef BOOTLEG_TENSOR_AUTOGRAD_H_
#define BOOTLEG_TENSOR_AUTOGRAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace bootleg::tensor {

namespace internal_autograd {

/// One node of the dynamically-built computation tape.
struct Node {
  Tensor value;
  Tensor grad;  // allocated lazily by EnsureGrad()
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> inputs;
  /// Accumulates input gradients from this node's grad. Set only when
  /// requires_grad is true and the op is differentiable.
  std::function<void(Node&)> backward;

  void EnsureGrad() {
    if (grad.empty() && value.numel() > 0) grad = Tensor(value.shape());
  }
};

}  // namespace internal_autograd

/// Handle to a tape node. Vars are cheap shared references; the tape is the
/// graph of Vars reachable from a loss. Reverse-mode differentiation runs
/// with Backward(loss).
class Var {
 public:
  using Node = internal_autograd::Node;

  Var() = default;

  /// A leaf holding `value`. Leaves with requires_grad=true are parameters.
  static Var Leaf(Tensor value, bool requires_grad = false);

  /// A constant (no gradient ever flows into it).
  static Var Constant(Tensor value) { return Leaf(std::move(value), false); }

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const {
    BOOTLEG_CHECK(defined());
    return node_->value;
  }
  Tensor& mutable_value() {
    BOOTLEG_CHECK(defined());
    return node_->value;
  }
  const Tensor& grad() const {
    BOOTLEG_CHECK(defined());
    return node_->grad;
  }
  Tensor& mutable_grad() {
    BOOTLEG_CHECK(defined());
    node_->EnsureGrad();
    return node_->grad;
  }
  bool requires_grad() const { return defined() && node_->requires_grad; }

  void ZeroGrad() {
    if (defined() && !node_->grad.empty()) node_->grad.Fill(0.0f);
  }

  /// Internal: tape access for op implementations.
  const std::shared_ptr<Node>& node() const { return node_; }

  /// Internal: constructs from an existing node.
  static Var FromNode(std::shared_ptr<Node> node);

 private:
  std::shared_ptr<Node> node_;
};

/// Runs reverse-mode autodiff from scalar `loss` (numel()==1), accumulating
/// into the .grad of every reachable node with requires_grad.
void Backward(const Var& loss);

/// Row-id → gradient row. The sparse-gradient map type shared by embedding
/// tables and gradient scopes.
using SparseRowGrads = std::unordered_map<int64_t, std::vector<float>>;

/// Per-worker gradient buffer for data-parallel training.
///
/// Intermediate tape nodes are private to the thread that built them, but
/// gradient *sinks* — parameter leaves and embedding sparse-grad maps — are
/// shared across workers. While a GradScope is active on a thread, Backward
/// deposits every sink gradient into that scope instead of the shared
/// storage. After all workers join, the trainer calls ReduceInto() on each
/// scope in fixed worker order, which reproduces a deterministic accumulation
/// order regardless of how worker threads were actually scheduled.
///
/// A scope may outlive the tapes it was filled from: it keys dense buffers by
/// leaf Node pointers, which the ParameterStore keeps alive.
class GradScope {
 public:
  GradScope() = default;
  GradScope(const GradScope&) = delete;
  GradScope& operator=(const GradScope&) = delete;
  GradScope(GradScope&&) = default;
  GradScope& operator=(GradScope&&) = default;

  /// RAII: makes `scope` the calling thread's active scope (nesting restores
  /// the previous scope on destruction).
  class Activation {
   public:
    explicit Activation(GradScope* scope);
    ~Activation();
    Activation(const Activation&) = delete;
    Activation& operator=(const Activation&) = delete;

   private:
    GradScope* prev_;
  };

  /// The calling thread's active scope, or nullptr.
  static GradScope* Current();

  /// Dense gradient buffer for a leaf node, zero-allocated on first touch.
  Tensor* DenseGrad(internal_autograd::Node* node);

  /// Buffered sparse row-gradients destined for `target` (an embedding's
  /// sparse_grads() map), allocated on first touch.
  SparseRowGrads* SparseGrad(SparseRowGrads* target);

  /// Adds every buffered gradient into its real sink — dense buffers into
  /// node->grad, sparse buffers into their target maps. Dense buffers are
  /// zeroed and retained (their keys are parameter nodes that outlive the
  /// scope), so a scope reused across batches pays no per-batch allocation.
  /// Call from one thread at a time, after the workers that filled the
  /// scope have joined.
  void ReduceInto();

  /// True when the scope has never buffered anything. Retained (zeroed)
  /// buffers from a previous ReduceInto still count as non-empty.
  bool empty() const { return dense_.empty() && sparse_.empty(); }

 private:
  std::unordered_map<internal_autograd::Node*, Tensor> dense_;
  std::unordered_map<SparseRowGrads*, SparseRowGrads> sparse_;
};

// --- Differentiable ops -----------------------------------------------------

Var MatMul(const Var& a, const Var& b);
/// a [m,k] · b [n,k]ᵀ → [m,n] without materializing the transpose (the
/// attention score path); gradients use MatMul / MatMulTransposedA directly.
Var MatMulTransposedB(const Var& a, const Var& b);
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);
/// Elementwise multiply by a constant tensor (dropout / regularization masks).
Var MulConst(const Var& a, const Tensor& mask);
Var Scale(const Var& a, float alpha);
/// a [n,d] + bias [d].
Var AddRowBroadcast(const Var& a, const Var& bias);
Var Relu(const Var& a);
Var TanhV(const Var& a);
Var Gelu(const Var& a);
Var SoftmaxRows(const Var& a);
Var LogSoftmaxRows(const Var& a);
Var Transpose(const Var& a);
Var ConcatCols(const std::vector<Var>& parts);
Var ConcatRows(const std::vector<Var>& parts);
Var SliceCols(const Var& a, int64_t start, int64_t len);
Var SliceRows(const Var& a, int64_t start, int64_t len);
/// Differentiable row gather from a parameter table (dense scatter-add grad).
Var GatherRows(const Var& table, const std::vector<int64_t>& ids);
Var Sum(const Var& a);
Var Mean(const Var& a);
/// Elementwise max; gradient follows the winning element (ties go to `a`).
Var Max(const Var& a, const Var& b);
/// Row-wise layer normalization with learned gain/bias (both shape [d]).
Var LayerNorm(const Var& x, const Var& gamma, const Var& beta, float eps = 1e-5f);
/// Mean negative log-likelihood of `targets` under row-wise softmax(logits).
Var CrossEntropy(const Var& logits, const std::vector<int64_t>& targets);
/// K + w·I for constant square K and learned scalar w (shape [1]).
Var AddScaledIdentity(const Tensor& k, const Var& w);
/// Mean of the rows of a 2-D input → [1, d]. Used by additive attention.
Var MeanRows(const Var& a);

}  // namespace bootleg::tensor

#endif  // BOOTLEG_TENSOR_AUTOGRAD_H_

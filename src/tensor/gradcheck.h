#ifndef BOOTLEG_TENSOR_GRADCHECK_H_
#define BOOTLEG_TENSOR_GRADCHECK_H_

#include <functional>
#include <vector>

#include "tensor/autograd.h"

namespace bootleg::tensor {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  bool ok = false;
  float max_abs_error = 0.0f;
  float max_rel_error = 0.0f;
};

/// Compares the analytic gradient of `loss_fn` w.r.t. each leaf in `leaves`
/// against central finite differences. `loss_fn` must rebuild the graph from
/// the leaves' current values on every call and return a scalar Var.
///
/// Used by the property-based tests to certify every autograd op.
GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& loss_fn,
    std::vector<Var>* leaves, float epsilon = 1e-3f, float tolerance = 2e-2f);

}  // namespace bootleg::tensor

#endif  // BOOTLEG_TENSOR_GRADCHECK_H_

#ifndef BOOTLEG_TENSOR_TENSOR_H_
#define BOOTLEG_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace bootleg::tensor {

/// Dense row-major float tensor. This is the value type of the training
/// substrate: all model math runs on 1-D and 2-D instances (per-sentence
/// batching keeps higher ranks unnecessary). Copyable and movable; copies
/// are deep.
class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-filled tensor of the given shape.
  explicit Tensor(std::vector<int64_t> shape);

  /// Builds a tensor from explicit shape and data; sizes must agree.
  Tensor(std::vector<int64_t> shape, std::vector<float> data);

  static Tensor Zeros(std::vector<int64_t> shape) { return Tensor(std::move(shape)); }
  static Tensor Full(std::vector<int64_t> shape, float value);
  static Tensor Ones(std::vector<int64_t> shape) { return Full(std::move(shape), 1.0f); }

  /// Gaussian initialization with the given standard deviation.
  static Tensor Randn(std::vector<int64_t> shape, util::Rng* rng, float stddev = 1.0f);

  /// Uniform initialization in [-limit, limit].
  static Tensor RandUniform(std::vector<int64_t> shape, util::Rng* rng, float limit);

  /// Identity matrix of size n×n.
  static Tensor Eye(int64_t n);

  /// 1-D tensor from values.
  static Tensor FromVector(std::vector<float> values);

  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  int64_t size(int64_t axis) const {
    BOOTLEG_CHECK(axis >= 0 && axis < dim());
    return shape_[static_cast<size_t>(axis)];
  }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  /// 1-D element access.
  float& at(int64_t i) {
    BOOTLEG_CHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  float at(int64_t i) const {
    BOOTLEG_CHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  /// 2-D element access; tensor must be rank 2.
  float& at(int64_t r, int64_t c) {
    BOOTLEG_CHECK_EQ(dim(), 2);
    BOOTLEG_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }
  float at(int64_t r, int64_t c) const {
    BOOTLEG_CHECK_EQ(dim(), 2);
    BOOTLEG_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1]);
    return data_[static_cast<size_t>(r * shape_[1] + c)];
  }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Returns a copy reshaped to `shape` (numel must be preserved).
  Tensor Reshape(std::vector<int64_t> shape) const;

  /// In-place fill.
  void Fill(float value);

  /// In-place accumulate: this += other (same shape).
  void Add(const Tensor& other);

  /// In-place axpy: this += alpha * other (same shape).
  void Axpy(float alpha, const Tensor& other);

  /// In-place scale.
  void Scale(float alpha);

  /// Sum of all elements.
  float Sum() const;

  /// Debug rendering, e.g. "[2,3] {1.0, 2.0, ...}".
  std::string ToString(int64_t max_elems = 8) const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

// ---------------------------------------------------------------------------
// Free-function kernels over plain tensors. These carry no autograd; the
// autograd layer (autograd.h) composes them and supplies backward rules.
// ---------------------------------------------------------------------------

/// C = A·B for 2-D A [m,k] and B [k,n]. Blocked and (above a size threshold)
/// threaded over output rows; bit-identical at every thread count.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A·Bᵀ for 2-D A [m,k] and B [n,k]. Fused to avoid materializing Bᵀ.
Tensor MatMulTransposedB(const Tensor& a, const Tensor& b);

/// C = Aᵀ·B for 2-D A [k,m] and B [k,n].
Tensor MatMulTransposedA(const Tensor& a, const Tensor& b);

/// Naive single-threaded kernels preserved verbatim from before the blocked
/// rewrite. The equivalence tests pin the production kernels to these, and
/// the bench harness reports the blocked speedup against them.
Tensor MatMulReference(const Tensor& a, const Tensor& b);
Tensor MatMulTransposedBReference(const Tensor& a, const Tensor& b);
Tensor MatMulTransposedAReference(const Tensor& a, const Tensor& b);

/// 2-D transpose.
Tensor Transpose(const Tensor& a);

/// Elementwise sum of same-shape tensors.
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise difference of same-shape tensors.
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise product of same-shape tensors.
Tensor Mul(const Tensor& a, const Tensor& b);

/// alpha * A.
Tensor Scale(const Tensor& a, float alpha);

/// A [n,d] + bias [d] broadcast over rows.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& bias);

/// Row-wise softmax of a 2-D tensor.
Tensor SoftmaxRows(const Tensor& a);

/// Row-wise log-softmax of a 2-D tensor.
Tensor LogSoftmaxRows(const Tensor& a);

/// Elementwise max.
Tensor Max(const Tensor& a, const Tensor& b);

/// Elementwise ReLU / tanh / GELU (tanh approximation).
Tensor Relu(const Tensor& a);
Tensor TanhT(const Tensor& a);
Tensor Gelu(const Tensor& a);

/// Concatenates 2-D tensors with equal row counts along columns.
Tensor ConcatCols(const std::vector<Tensor>& parts);

/// Concatenates 2-D tensors with equal column counts along rows.
Tensor ConcatRows(const std::vector<Tensor>& parts);

/// Copies `len` columns starting at `start` from a 2-D tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);

/// Copies `len` rows starting at `start` from a 2-D tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t len);

/// Gathers rows of a 2-D table by index.
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& ids);

/// Row-wise layer normalization y = (x - mean) / sqrt(var + eps) * gamma +
/// beta. This is the forward computation of the autograd LayerNorm op; when
/// `xhat` / `inv_std` are non-null they receive the normalized rows and the
/// per-row 1/std that the backward pass needs. Keeping both paths on this one
/// kernel is what makes the no-tape inference path bit-identical to training.
Tensor LayerNormRows(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                     float eps = 1e-5f, Tensor* xhat = nullptr,
                     Tensor* inv_std = nullptr);

/// K + w·I for square K (value-path form of the autograd op).
Tensor AddScaledIdentity(const Tensor& k, float w);

/// Row index of the maximum in a 1-D tensor.
int64_t ArgMax(const Tensor& a);

/// Frobenius / L2 norm.
float Norm(const Tensor& a);

/// True if all finite.
bool AllFinite(const Tensor& a);

}  // namespace bootleg::tensor

#endif  // BOOTLEG_TENSOR_TENSOR_H_

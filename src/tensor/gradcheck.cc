#include "tensor/gradcheck.h"

#include <cmath>

namespace bootleg::tensor {

GradCheckResult CheckGradients(
    const std::function<Var(const std::vector<Var>&)>& loss_fn,
    std::vector<Var>* leaves, float epsilon, float tolerance) {
  GradCheckResult result;

  // Analytic pass.
  for (Var& leaf : *leaves) leaf.ZeroGrad();
  Var loss = loss_fn(*leaves);
  Backward(loss);

  std::vector<Tensor> analytic;
  analytic.reserve(leaves->size());
  for (Var& leaf : *leaves) {
    analytic.push_back(leaf.grad().empty() ? Tensor(leaf.value().shape())
                                           : leaf.grad());
  }

  // Numeric pass: central differences on every element of every leaf.
  for (size_t li = 0; li < leaves->size(); ++li) {
    Var& leaf = (*leaves)[li];
    if (!leaf.requires_grad()) continue;
    Tensor& v = leaf.mutable_value();
    for (int64_t i = 0; i < v.numel(); ++i) {
      const float orig = v.at(i);
      v.at(i) = orig + epsilon;
      const float up = loss_fn(*leaves).value().at(0);
      v.at(i) = orig - epsilon;
      const float down = loss_fn(*leaves).value().at(0);
      v.at(i) = orig;
      const float numeric = (up - down) / (2.0f * epsilon);
      const float a = analytic[li].at(i);
      const float abs_err = std::abs(a - numeric);
      const float denom = std::max({std::abs(a), std::abs(numeric), 1.0f});
      const float rel_err = abs_err / denom;
      result.max_abs_error = std::max(result.max_abs_error, abs_err);
      result.max_rel_error = std::max(result.max_rel_error, rel_err);
    }
  }

  result.ok = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace bootleg::tensor

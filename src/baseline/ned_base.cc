#include "baseline/ned_base.h"

namespace bootleg::baseline {

using tensor::Tensor;
using tensor::Var;

NedBaseModel::NedBaseModel(int64_t num_entities, int64_t vocab_size,
                           NedBaseConfig config, uint64_t seed)
    : config_(config), rng_(seed) {
  BOOTLEG_CHECK_EQ(config_.entity_dim, config_.encoder.hidden);
  encoder_ = std::make_unique<text::WordEncoder>(&store_, "encoder", vocab_size,
                                                 config_.encoder, &rng_);
  entity_emb_ = store_.CreateEmbedding("entity_emb", num_entities,
                                       config_.entity_dim, &rng_);
  mention_proj_ = std::make_unique<nn::Linear>(
      &store_, "mention_proj", config_.encoder.hidden, config_.entity_dim, &rng_);
}

Var NedBaseModel::MentionLogits(const Var& w,
                                const data::MentionExample& mention,
                                bool train) {
  (void)train;
  if (mention.candidates.empty()) return Var();
  const int64_t n = w.value().size(0);
  const int64_t first = std::max<int64_t>(0, std::min(mention.span_start, n - 1));
  const int64_t last = std::max<int64_t>(0, std::min(mention.span_end, n - 1));
  Var m = text::WordEncoder::MentionEmbedding(w, first, last);  // [1, hidden]
  Var proj = mention_proj_->Forward(m);                         // [1, dim]
  Var u = entity_emb_->Lookup(mention.candidates);              // [K, dim]
  return tensor::MatMul(proj, tensor::Transpose(u));            // [1, K]
}

Var NedBaseModel::Loss(const data::SentenceExample& example, bool train,
                       util::Rng* rng) {
  if (rng == nullptr) rng = &rng_;
  if (example.token_ids.empty()) return Var();
  Var w = encoder_->Encode(example.token_ids, rng, train);
  std::vector<Var> losses;
  for (const data::MentionExample& mention : example.mentions) {
    if (mention.gold_index < 0) continue;
    Var logits = MentionLogits(w, mention, train);
    if (!logits.defined()) continue;
    losses.push_back(tensor::CrossEntropy(logits, {mention.gold_index}));
  }
  if (losses.empty()) return Var();
  Var loss = losses[0];
  for (size_t i = 1; i < losses.size(); ++i) loss = tensor::Add(loss, losses[i]);
  return tensor::Scale(loss, 1.0f / static_cast<float>(losses.size()));
}

std::vector<int64_t> NedBaseModel::Predict(const data::SentenceExample& example) {
  std::vector<int64_t> preds(example.mentions.size(), -1);
  if (example.token_ids.empty()) return preds;
  Var w = encoder_->Encode(example.token_ids, &rng_, /*train=*/false);
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    Var logits = MentionLogits(w, example.mentions[mi], /*train=*/false);
    if (!logits.defined()) continue;
    const Tensor& s = logits.value();
    int64_t best = 0;
    for (int64_t k = 1; k < s.size(1); ++k) {
      if (s.at(0, k) > s.at(0, best)) best = k;
    }
    preds[mi] = best;
  }
  return preds;
}

int64_t NedBaseModel::EmbeddingBytes() const {
  return entity_emb_->table().numel() * static_cast<int64_t>(sizeof(float));
}

int64_t NedBaseModel::NetworkBytes() const {
  int64_t bytes = 0;
  for (const std::string& name : store_.param_names()) {
    if (name.rfind("encoder", 0) == 0) continue;
    bytes += store_.GetParam(name).value().numel() *
             static_cast<int64_t>(sizeof(float));
  }
  return bytes;
}

}  // namespace bootleg::baseline

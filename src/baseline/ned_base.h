#ifndef BOOTLEG_BASELINE_NED_BASE_H_
#define BOOTLEG_BASELINE_NED_BASE_H_

#include <memory>
#include <vector>

#include "data/example.h"
#include "eval/evaluator.h"
#include "nn/layers.h"
#include "nn/param_store.h"
#include "text/word_encoder.h"
#include "util/rng.h"

namespace bootleg::baseline {

/// Configuration for the Févry et al. style baseline.
struct NedBaseConfig {
  text::WordEncoderConfig encoder;
  int64_t entity_dim = 64;  // must equal encoder.hidden (dot-product scoring)
};

/// NED-Base (Févry et al. [16]): the prior-SotA baseline the paper compares
/// against on the tail. Learns entity embeddings by maximizing the dot
/// product between each candidate embedding and the fine-tuned contextual
/// representation of the mention. Text-only: no type, relation, or KG
/// signals, which is exactly why it collapses on tail entities.
class NedBaseModel : public eval::NedScorer {
 public:
  NedBaseModel(int64_t num_entities, int64_t vocab_size, NedBaseConfig config,
               uint64_t seed);

  /// Mean cross-entropy over the sentence's trainable mentions; undefined Var
  /// when none exist.
  /// `rng` drives dropout; nullptr uses the internal generator. Concurrent
  /// calls are safe with distinct rngs.
  tensor::Var Loss(const data::SentenceExample& example, bool train,
                   util::Rng* rng = nullptr);

  std::vector<int64_t> Predict(const data::SentenceExample& example) override;

  nn::ParameterStore& store() { return store_; }
  const NedBaseConfig& config() const { return config_; }

  /// Table 10 accounting (entity table vs the rest; encoder excluded as the
  /// paper excludes BERT).
  int64_t EmbeddingBytes() const;
  int64_t NetworkBytes() const;

 private:
  /// Per-mention candidate logits [1, K]; undefined when no candidates.
  tensor::Var MentionLogits(const tensor::Var& w,
                            const data::MentionExample& mention, bool train);

  NedBaseConfig config_;
  util::Rng rng_;
  nn::ParameterStore store_;
  std::unique_ptr<text::WordEncoder> encoder_;
  nn::Embedding* entity_emb_ = nullptr;
  std::unique_ptr<nn::Linear> mention_proj_;
};

}  // namespace bootleg::baseline

#endif  // BOOTLEG_BASELINE_NED_BASE_H_

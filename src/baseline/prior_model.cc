#include "baseline/prior_model.h"

namespace bootleg::baseline {

std::vector<int64_t> PriorModel::Predict(const data::SentenceExample& example) {
  std::vector<int64_t> preds(example.mentions.size(), -1);
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    const data::MentionExample& m = example.mentions[mi];
    if (m.candidates.empty()) continue;
    size_t best = 0;
    for (size_t k = 1; k < m.priors.size(); ++k) {
      if (m.priors[k] > m.priors[best]) best = k;
    }
    preds[mi] = static_cast<int64_t>(best);
  }
  return preds;
}

}  // namespace bootleg::baseline

#ifndef BOOTLEG_BASELINE_PRIOR_MODEL_H_
#define BOOTLEG_BASELINE_PRIOR_MODEL_H_

#include <vector>

#include "data/example.h"
#include "eval/evaluator.h"

namespace bootleg::baseline {

/// Static alias-prior baseline: always predicts the candidate with the
/// highest anchor-link prior. This is the classical pre-neural NED strategy
/// (link counts, Cucerzan [12]) and the floor every neural model must beat;
/// Table 1 uses it as the conservative stand-in for earlier published
/// systems.
class PriorModel : public eval::NedScorer {
 public:
  std::vector<int64_t> Predict(const data::SentenceExample& example) override;
};

}  // namespace bootleg::baseline

#endif  // BOOTLEG_BASELINE_PRIOR_MODEL_H_

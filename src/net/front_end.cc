#include "net/front_end.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <utility>

#include "util/logging.h"

namespace bootleg::net {

namespace {

/// Read chunk size and the per-dispatch read budget. Edge-triggered sockets
/// must be drained to EAGAIN before the next edge fires, but one connection
/// with an infinite appetite must not starve its loop siblings — after
/// kReadRoundsPerEvent chunks the connection reposts itself and yields.
constexpr size_t kReadChunk = 64 * 1024;
constexpr int kReadRoundsPerEvent = 16;

/// Compact the write buffer once this many consumed bytes accumulate.
constexpr size_t kWriteCompactBytes = 256 * 1024;

/// Upper bound on iovec entries per coalesced writev (well under IOV_MAX;
/// each reply costs two entries — text and newline — plus one for the
/// buffered backlog).
constexpr int kMaxIovPerFlush = 64;

int64_t MonotonicMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

}  // namespace

struct FrontEnd::Loop {
  EventLoop el;
  // Loop-thread-only: connections owned by this loop, keyed by fd.
  std::unordered_map<int, std::shared_ptr<class Connection>> conns;
};

/// Listener-readiness handler; all logic lives in FrontEnd::HandleAccept.
class Acceptor : public FdHandler {
 public:
  explicit Acceptor(FrontEnd* fe) : fe_(fe) {}
  void OnEvents(uint32_t) override { fe_->HandleAccept(); }

 private:
  FrontEnd* const fe_;
};

/// One non-blocking connection owned by one event loop. Every member is
/// loop-thread-only; cross-thread reply completions re-enter through
/// EventLoop::Post with a weak_ptr, so a torn-down connection simply drops
/// late replies.
class Connection : public FdHandler,
                   public std::enable_shared_from_this<Connection> {
 public:
  Connection(FrontEnd* fe, FrontEnd::Loop* loop, int fd, PeerInfo peer)
      : fe_(fe),
        loop_(loop),
        fd_(fd),
        peer_(std::move(peer)),
        last_activity_ms_(MonotonicMs()) {}

  void OnEvents(uint32_t events) override {
    // Keep *this alive across teardown paths triggered below.
    const std::shared_ptr<Connection> self = shared_from_this();
    if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
      Close();
      return;
    }
    if ((events & EPOLLIN) != 0) ReadAll();
    if (!dead_ && (events & EPOLLOUT) != 0) {
      TryWrite();
      if (!dead_) MaybeCloseAfterDrain();
    }
  }

  /// Resumes reading after a yielded read budget (posted continuation).
  void ResumeRead() {
    const std::shared_ptr<Connection> self = shared_from_this();
    if (!dead_) ReadAll();
  }

  /// Fills the reply slot for request `seq` and schedules a coalesced flush.
  /// Loop-thread-only (Post from elsewhere). Completions landing in the same
  /// event-loop pass share one flush — and one writev — instead of issuing a
  /// syscall apiece.
  void Complete(uint64_t seq, std::string reply) {
    if (dead_) return;
    const uint64_t idx = seq - base_seq_;
    if (idx >= slots_.size()) return;
    Slot& slot = slots_[static_cast<size_t>(idx)];
    if (slot.ready) return;  // double completion — first one wins
    slot.ready = true;
    slot.text = std::move(reply);
    ready_bytes_ += slot.text.size() + 1;
    --inflight_;
    FlushOrSchedule();
  }

  /// True when the idle reaper should disconnect this connection: nothing in
  /// flight (a slow batch is not the client's fault) and no socket activity
  /// for `timeout_ms`.
  bool ReapableAt(int64_t now_ms, int64_t timeout_ms) const {
    return !dead_ && inflight_ == 0 && now_ms - last_activity_ms_ >= timeout_ms;
  }

  /// Immediate teardown: removes the fd from epoll, closes it, and drops
  /// the connection from its loop. Safe to call repeatedly.
  void Close() {
    if (dead_) return;
    dead_ = true;
    loop_->el.DelFd(fd_, this);
    ::close(fd_);
    fe_->active_conns_.fetch_sub(1, std::memory_order_relaxed);
    loop_->conns.erase(fd_);  // may release the last owning reference
  }

 private:
  /// One pipelined request's reply slot; replies flush strictly in request
  /// order, so responses on a connection always match request order.
  struct Slot {
    bool ready = false;
    std::string text;
  };

  void ReadAll() {
    char buf[kReadChunk];
    int rounds = 0;
    while (!dead_ && !closing_ && !read_closed_) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        last_activity_ms_ = MonotonicMs();
        rbuf_.append(buf, static_cast<size_t>(n));
        ProcessReadBuffer();
        if (dead_ || closing_) break;
        if (++rounds >= kReadRoundsPerEvent) {
          // Yield to loop siblings; re-enter via a posted continuation so
          // the edge we have not drained is not lost.
          std::weak_ptr<Connection> weak = weak_from_this();
          loop_->el.Post([weak] {
            if (auto c = weak.lock()) c->ResumeRead();
          });
          return;
        }
        continue;
      }
      if (n == 0) {
        // Peer half-closed: no more requests, but replies still in flight
        // are delivered before the connection closes.
        read_closed_ = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      Close();  // ECONNRESET and friends
      return;
    }
    if (!dead_) MaybeCloseAfterDrain();
  }

  /// Frames complete lines out of rbuf_ and dispatches them. Enforces the
  /// line-length cap on both complete and still-unterminated lines.
  void ProcessReadBuffer() {
    size_t start = 0;
    while (!dead_ && !closing_) {
      const size_t nl = rbuf_.find('\n', std::max(start, scan_pos_));
      if (nl == std::string::npos) break;
      std::string line = rbuf_.substr(start, nl - start);
      start = nl + 1;
      scan_pos_ = start;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.size() > fe_->options_.max_line_bytes) {
        OverlongLine();
        break;
      }
      if (line.empty()) continue;
      Dispatch(std::move(line));
    }
    if (dead_) return;
    if (start > 0) {
      rbuf_.erase(0, start);
      scan_pos_ = rbuf_.size();
    } else {
      scan_pos_ = rbuf_.size();
    }
    if (!closing_ && rbuf_.size() > fe_->options_.max_line_bytes) {
      // A line with no newline in sight has outgrown the cap (slowloris or
      // a runaway client): structured error, then disconnect.
      OverlongLine();
    }
  }

  void OverlongLine() {
    fe_->overlong_disconnects_.fetch_add(1, std::memory_order_relaxed);
    PushTransportReply(
        fe_->handler_->TransportErrorReply(TransportError::kLineTooLong));
    rbuf_.clear();
    scan_pos_ = 0;
    closing_ = true;      // stop framing; close once the reply drains
    read_closed_ = true;  // stop reading from the socket entirely
    ScheduleFlush();
  }

  void Dispatch(std::string line) {
    if (inflight_ >= fe_->options_.max_inflight_per_conn) {
      // Fairness cap: one connection cannot monopolize the batcher by
      // pipelining without bound. The offending request is answered (in
      // order) with a structured reject; the connection survives.
      PushTransportReply(
          fe_->handler_->TransportErrorReply(TransportError::kTooManyInflight));
      FlushOrSchedule();
      return;
    }
    const uint64_t seq = next_seq_++;
    slots_.emplace_back();
    ++inflight_;
    std::weak_ptr<Connection> weak = weak_from_this();
    EventLoop* el = &loop_->el;
    fe_->handler_->HandleLineFrom(
        std::move(line), peer_, [weak, el, seq](std::string reply) {
          if (el->InLoopThread()) {
            // Synchronous completion (cheap inline ops): skip the wakeup.
            if (auto c = weak.lock()) c->Complete(seq, std::move(reply));
            return;
          }
          el->Post([weak, seq, r = std::move(reply)]() mutable {
            if (auto c = weak.lock()) c->Complete(seq, std::move(r));
          });
        });
  }

  /// Appends a transport-originated reply as an already-ready slot so it
  /// serializes correctly with pending pipelined replies. Consumes a
  /// sequence number like any other slot: seq and deque position must stay
  /// in lockstep or later completions would index the wrong slot.
  void PushTransportReply(std::string text) {
    next_seq_++;
    Slot slot;
    slot.ready = true;
    slot.text = std::move(text);
    ready_bytes_ += slot.text.size() + 1;
    slots_.push_back(std::move(slot));
  }

  /// Schedules a coalesced flush — or flushes immediately once a full write
  /// cap's worth of reply bytes is waiting in ready slots. Without the
  /// inline path, a client that firehoses requests and never reads its
  /// replies accumulates them in slots_ faster than the posted pass drains
  /// them, and the write cap (which only sees wbuf_) never trips.
  void FlushOrSchedule() {
    if (ready_bytes_ > fe_->options_.write_buf_bytes) {
      FlushReadySlots();
      return;
    }
    ScheduleFlush();
  }

  /// Defers FlushReadySlots to a posted continuation so every reply that
  /// becomes ready during the current event-loop pass rides the same writev.
  /// Idempotent per pass: the first caller posts, the rest piggyback.
  void ScheduleFlush() {
    if (dead_ || flush_scheduled_) return;
    flush_scheduled_ = true;
    std::weak_ptr<Connection> weak = weak_from_this();
    loop_->el.Post([weak] {
      if (auto c = weak.lock()) c->FlushReadySlots();
    });
  }

  void FlushReadySlots() {
    flush_scheduled_ = false;
    if (dead_) return;
    // Pop the contiguous ready prefix; replies stay in request order.
    std::vector<std::string> ready;
    while (!slots_.empty() && slots_.front().ready) {
      ready_bytes_ -= slots_.front().text.size() + 1;
      ready.push_back(std::move(slots_.front().text));
      slots_.pop_front();
      ++base_seq_;
    }
    WriteCoalesced(ready);
    if (dead_) return;
    if (wbuf_.size() - woff_ > fe_->options_.write_buf_bytes) {
      // The client is not reading its replies; holding more than the cap
      // hostage would let slow clients exhaust server memory.
      fe_->slow_disconnects_.fetch_add(1, std::memory_order_relaxed);
      Close();
      return;
    }
    MaybeCloseAfterDrain();
  }

  /// Sends the buffered backlog plus this pass's ready replies with a single
  /// writev per kernel round trip — no per-reply send, and reply bytes are
  /// copied only if the kernel leaves them unsent (they then join wbuf_ for
  /// the EPOLLOUT-driven TryWrite path).
  void WriteCoalesced(const std::vector<std::string>& ready) {
    static const char kNewline = '\n';
    // Cursor over the logical [backlog | reply, newline, reply, ...] stream:
    // replies before `idx` are fully sent; `part` bytes of ready[idx] plus
    // its newline are already sent. Each writev advances the cursor, so the
    // whole flush is O(bytes) no matter how many replies are pending.
    size_t idx = 0;
    size_t part = 0;
    while (woff_ < wbuf_.size() || idx < ready.size()) {
      struct iovec iov[kMaxIovPerFlush];
      int iovcnt = 0;
      if (woff_ < wbuf_.size()) {
        iov[iovcnt].iov_base = const_cast<char*>(wbuf_.data() + woff_);
        iov[iovcnt].iov_len = wbuf_.size() - woff_;
        ++iovcnt;
      }
      size_t j = idx;
      size_t jpart = part;
      while (j < ready.size() && iovcnt + 2 <= kMaxIovPerFlush) {
        const std::string& t = ready[j];
        if (jpart < t.size()) {
          iov[iovcnt].iov_base = const_cast<char*>(t.data() + jpart);
          iov[iovcnt].iov_len = t.size() - jpart;
          ++iovcnt;
        }
        iov[iovcnt].iov_base = const_cast<char*>(&kNewline);
        iov[iovcnt].iov_len = 1;
        ++iovcnt;
        ++j;
        jpart = 0;
      }
      const ssize_t n = ::writev(fd_, iov, iovcnt);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n <= 0) {
        // A dead peer: tear down now instead of reading and computing
        // replies that can never be delivered.
        Close();
        return;
      }
      last_activity_ms_ = MonotonicMs();
      size_t left = static_cast<size_t>(n);
      const size_t backlog = wbuf_.size() - woff_;
      const size_t from_backlog = left < backlog ? left : backlog;
      woff_ += from_backlog;
      left -= from_backlog;
      while (left > 0) {
        const size_t remain = ready[idx].size() + 1 - part;
        if (left >= remain) {
          left -= remain;
          ++idx;
          part = 0;
        } else {
          part += left;
          left = 0;
        }
      }
    }

    // Whatever the kernel did not take is appended to wbuf_ byte-exactly.
    for (size_t k = idx; k < ready.size(); ++k) {
      const std::string& t = ready[k];
      const size_t p = k == idx ? part : 0;
      if (p <= t.size()) {
        wbuf_.append(t, p, std::string::npos);
        wbuf_ += '\n';
      }
    }
    if (woff_ == wbuf_.size()) {
      wbuf_.clear();
      woff_ = 0;
    } else if (woff_ > kWriteCompactBytes) {
      wbuf_.erase(0, woff_);
      woff_ = 0;
    }
  }

  void TryWrite() {
    while (woff_ < wbuf_.size()) {
      const ssize_t n = ::send(fd_, wbuf_.data() + woff_, wbuf_.size() - woff_,
                               MSG_NOSIGNAL);
      if (n > 0) {
        woff_ += static_cast<size_t>(n);
        last_activity_ms_ = MonotonicMs();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // A dead peer: tear down now instead of reading and computing replies
      // that can never be delivered.
      Close();
      return;
    }
    if (woff_ == wbuf_.size()) {
      wbuf_.clear();
      woff_ = 0;
    } else if (woff_ > kWriteCompactBytes) {
      wbuf_.erase(0, woff_);
      woff_ = 0;
    }
  }

  void MaybeCloseAfterDrain() {
    if ((closing_ || read_closed_) && slots_.empty() && woff_ == wbuf_.size()) {
      Close();
    }
  }

  FrontEnd* const fe_;
  FrontEnd::Loop* const loop_;
  const int fd_;
  const PeerInfo peer_;
  int64_t last_activity_ms_;     // CLOCK_MONOTONIC ms of last socket I/O
  bool flush_scheduled_ = false;  // a posted FlushReadySlots is pending
  size_t ready_bytes_ = 0;        // reply bytes held in ready slots

  std::string rbuf_;
  size_t scan_pos_ = 0;  // rbuf_ prefix already scanned for '\n'

  std::string wbuf_;
  size_t woff_ = 0;  // bytes of wbuf_ already sent

  std::deque<Slot> slots_;   // replies for requests [base_seq_, next_seq_)
  uint64_t base_seq_ = 0;
  uint64_t next_seq_ = 0;
  int inflight_ = 0;  // dispatched requests whose reply has not arrived

  bool read_closed_ = false;  // peer EOF (or transport error stopped reads)
  bool closing_ = false;      // flush pending replies, then close
  bool dead_ = false;
};

FrontEnd::FrontEnd(FrontEndOptions options, LineHandler* handler)
    : options_(std::move(options)), handler_(handler) {
  BOOTLEG_CHECK(handler_ != nullptr);
}

FrontEnd::~FrontEnd() {
  Stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

util::Status FrontEnd::Start() {
  BOOTLEG_CHECK_MSG(!started_, "FrontEnd::Start called twice");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return util::Status::Internal(std::string("socket: ") +
                                  std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::Internal(
        "bind 127.0.0.1:" + std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::Status::Internal("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }

  const int nloops = options_.io_threads < 1 ? 1 : options_.io_threads;
  loops_.reserve(static_cast<size_t>(nloops));
  for (int i = 0; i < nloops; ++i) {
    auto loop = std::make_unique<Loop>();
    const util::Status st = loop->el.Init();
    if (!st.ok()) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      loops_.clear();
      return st;
    }
    loops_.push_back(std::move(loop));
  }
  acceptor_ = std::make_unique<Acceptor>(this);
  const util::Status st =
      loops_[0]->el.AddFd(listen_fd_, EPOLLIN | EPOLLET, acceptor_.get());
  if (!st.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    loops_.clear();
    return st;
  }

  // I/O threads inherit a mask with the serving signals blocked, so
  // process-directed SIGHUP/SIGTERM keep landing on the application's main
  // thread (which sigwaits/sigsuspends for them) instead of a random loop.
  sigset_t block, old;
  sigemptyset(&block);
  sigaddset(&block, SIGHUP);
  sigaddset(&block, SIGINT);
  sigaddset(&block, SIGTERM);
  sigaddset(&block, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &block, &old);
  threads_.reserve(loops_.size());
  for (auto& loop : loops_) {
    threads_.emplace_back([l = loop.get()] { l->el.Run(); });
  }
  pthread_sigmask(SIG_SETMASK, &old, nullptr);

  // Arm the idle reaper on each loop's own thread (RunAfter is
  // loop-thread-only).
  if (options_.idle_timeout_ms > 0) {
    for (auto& loop : loops_) {
      Loop* l = loop.get();
      l->el.Post([this, l] { ScheduleIdleSweep(l); });
    }
  }

  started_ = true;
  return util::Status::OK();
}

void FrontEnd::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Tear the listener out first so no new connections race the shutdown,
  // then close every connection on its owning loop thread.
  loops_[0]->el.Post(
      [this] { loops_[0]->el.DelFd(listen_fd_, acceptor_.get()); });
  for (auto& loop : loops_) {
    Loop* l = loop.get();
    l->el.Post([l] {
      std::vector<std::shared_ptr<Connection>> conns;
      conns.reserve(l->conns.size());
      for (auto& [fd, conn] : l->conns) conns.push_back(conn);
      for (auto& conn : conns) conn->Close();
    });
    l->el.Stop();
  }
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

FrontEndStats FrontEnd::stats() const {
  FrontEndStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.active_connections = active_conns_.load(std::memory_order_relaxed);
  s.rejected_connections = rejected_conns_.load(std::memory_order_relaxed);
  s.accept_errors = accept_errors_.load(std::memory_order_relaxed);
  s.overlong_line_disconnects =
      overlong_disconnects_.load(std::memory_order_relaxed);
  s.slow_client_disconnects = slow_disconnects_.load(std::memory_order_relaxed);
  s.idle_disconnects = idle_disconnects_.load(std::memory_order_relaxed);
  return s;
}

void FrontEnd::HandleAccept() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      accept_backoff_ms_ = 0;  // forward progress resets the backoff ladder
      accepted_.fetch_add(1, std::memory_order_relaxed);
      if (active_conns_.load(std::memory_order_relaxed) >=
          options_.max_conns) {
        rejected_conns_.fetch_add(1, std::memory_order_relaxed);
        // Best-effort structured refusal: a fresh socket's send buffer is
        // empty, so this short line goes out without blocking.
        const std::string reply =
            handler_->TransportErrorReply(TransportError::kServerFull) + "\n";
        [[maybe_unused]] const ssize_t n =
            ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      active_conns_.fetch_add(1, std::memory_order_relaxed);
      Loop* target = loops_[next_loop_ % loops_.size()].get();
      ++next_loop_;
      if (target == loops_[0].get()) {
        AdoptConnection(target, fd);
      } else {
        target->el.Post([this, target, fd] { AdoptConnection(target, fd); });
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR || errno == ECONNABORTED) continue;
    // EMFILE/ENFILE/ENOBUFS/ENOMEM and anything unexpected: the listener
    // must survive. Pause accepting with exponential backoff; queued
    // connections wait in the backlog.
    accept_errors_.fetch_add(1, std::memory_order_relaxed);
    BOOTLEG_LOG(Warning) << "accept failed (" << std::strerror(errno)
                         << "); pausing accepts";
    AcceptPause(listen_fd_);
    return;
  }
}

void FrontEnd::AcceptPause(int listen_fd) {
  loops_[0]->el.DelFd(listen_fd, acceptor_.get());
  accept_backoff_ms_ =
      accept_backoff_ms_ == 0
          ? options_.accept_backoff_initial_ms
          : std::min(accept_backoff_ms_ * 2, options_.accept_backoff_max_ms);
  loops_[0]->el.RunAfter(accept_backoff_ms_, [this, listen_fd] {
    if (stopped_) return;
    const util::Status st =
        loops_[0]->el.AddFd(listen_fd, EPOLLIN | EPOLLET, acceptor_.get());
    if (!st.ok()) {
      // epoll itself is resource-starved; keep backing off.
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      AcceptPause(listen_fd);
      return;
    }
    // The edge may have passed while unregistered; drain explicitly.
    HandleAccept();
  });
}

void FrontEnd::ScheduleIdleSweep(Loop* loop) {
  // Sweep granularity: a quarter of the timeout, floored so a tiny test
  // timeout cannot spin the loop.
  const int64_t interval =
      std::max<int64_t>(1, static_cast<int64_t>(options_.idle_timeout_ms) / 4);
  loop->el.RunAfter(interval, [this, loop] {
    if (stopped_) return;
    SweepIdle(loop);
    ScheduleIdleSweep(loop);
  });
}

void FrontEnd::SweepIdle(Loop* loop) {
  const int64_t now = MonotonicMs();
  const int64_t timeout = options_.idle_timeout_ms;
  // Collect first: Close() mutates loop->conns under our feet.
  std::vector<std::shared_ptr<Connection>> victims;
  for (const auto& [fd, conn] : loop->conns) {
    if (conn->ReapableAt(now, timeout)) victims.push_back(conn);
  }
  for (const auto& conn : victims) {
    idle_disconnects_.fetch_add(1, std::memory_order_relaxed);
    conn->Close();
  }
}

void FrontEnd::AdoptConnection(Loop* loop, int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Capture the peer once; the protocol layer authorizes admin ops on it.
  PeerInfo peer;
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0 &&
      addr.sin_family == AF_INET) {
    char text[INET_ADDRSTRLEN] = {0};
    if (::inet_ntop(AF_INET, &addr.sin_addr, text, sizeof(text)) != nullptr) {
      peer.address = text;
    }
    peer.loopback = (ntohl(addr.sin_addr.s_addr) >> 24) == 127;
  }
  auto conn = std::make_shared<Connection>(this, loop, fd, std::move(peer));
  loop->conns[fd] = conn;
  const util::Status st =
      loop->el.AddFd(fd, EPOLLIN | EPOLLOUT | EPOLLET, conn.get());
  if (!st.ok()) {
    loop->conns.erase(fd);
    ::close(fd);
    active_conns_.fetch_sub(1, std::memory_order_relaxed);
    accept_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace bootleg::net

#ifndef BOOTLEG_NET_EVENT_LOOP_H_
#define BOOTLEG_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "util/status.h"

namespace bootleg::net {

/// Receives readiness events for one registered fd. Implementations live as
/// long as the fd stays registered; EventLoop never owns them.
class FdHandler {
 public:
  virtual ~FdHandler() = default;
  /// Called on the loop thread with the epoll event mask for the fd.
  virtual void OnEvents(uint32_t events) = 0;
};

/// One epoll-driven event loop pinned to one thread.
///
/// Everything that touches a registered fd (Add/Mod/DelFd, handler state)
/// happens on the loop thread; the only thread-safe entry points are Post()
/// (run a closure on the loop thread, waking it if asleep) and Stop().
/// Timers (RunAfter) are loop-thread-only and fire between epoll waits —
/// enough for accept backoff and test pacing, not a general-purpose clock.
///
/// Deleting an fd whose handler still has an undelivered event in the
/// current epoll_wait batch is safe: DelFd quarantines the handler for the
/// remainder of the dispatch round, so a connection can tear itself (or a
/// sibling) down mid-batch without a use-after-free.
class EventLoop {
 public:
  EventLoop() = default;
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and wakeup eventfd. Must be called (and
  /// succeed) before Run.
  util::Status Init();

  /// Processes events until Stop(). Call from exactly one thread; that
  /// thread becomes the loop thread.
  void Run();

  /// Thread-safe: asks Run() to return once the current dispatch round
  /// finishes. Idempotent.
  void Stop();

  /// Thread-safe: runs `fn` on the loop thread. If called from the loop
  /// thread itself, still enqueues (runs later this round) — use direct
  /// calls when already on-loop and ordering matters.
  void Post(std::function<void()> fn);

  /// Loop-thread-only: runs `fn` on the loop thread after `delay_ms`.
  void RunAfter(int64_t delay_ms, std::function<void()> fn);

  /// Loop-thread-only fd registration. `events` is an epoll mask
  /// (EPOLLIN|EPOLLOUT|EPOLLET...). The handler must outlive registration.
  util::Status AddFd(int fd, uint32_t events, FdHandler* handler);
  util::Status ModFd(int fd, uint32_t events, FdHandler* handler);
  /// Removes the fd from epoll and quarantines `handler` for the rest of the
  /// current dispatch round. Does not close the fd.
  void DelFd(int fd, FdHandler* handler);

  /// True when called from the thread currently inside Run().
  bool InLoopThread() const {
    return loop_thread_id_.load(std::memory_order_acquire) ==
           std::this_thread::get_id();
  }

 private:
  struct Timer {
    int64_t due_ms = 0;  // CLOCK_MONOTONIC milliseconds
    uint64_t seq = 0;    // insertion order tiebreak (stable firing order)
    std::function<void()> fn;
    bool operator>(const Timer& o) const {
      return due_ms != o.due_ms ? due_ms > o.due_ms : seq > o.seq;
    }
  };

  void Wake();
  void DrainWakeups();
  void RunPosted();
  void RunDueTimers(int64_t now_ms);
  int NextTimeoutMs(int64_t now_ms) const;
  static int64_t NowMs();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::thread::id> loop_thread_id_{};

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  uint64_t timer_seq_ = 0;

  // Handlers DelFd'd during the current dispatch round; their remaining
  // queued events are dropped instead of delivered to freed objects.
  std::unordered_set<FdHandler*> quarantined_;
  bool dispatching_ = false;
};

}  // namespace bootleg::net

#endif  // BOOTLEG_NET_EVENT_LOOP_H_

#ifndef BOOTLEG_NET_FRONT_END_H_
#define BOOTLEG_NET_FRONT_END_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.h"
#include "util/status.h"

namespace bootleg::net {

class Acceptor;
class Connection;

/// Tuning knobs for the epoll front end. Every buffer is hard-bounded: a
/// hostile or slow client can cost at most max_line_bytes of read buffer
/// plus write_buf_bytes of reply buffer before it is disconnected.
struct FrontEndOptions {
  int port = 0;            // loopback TCP port; 0 = ephemeral
  int io_threads = 1;      // event loops; loop 0 also owns the listener
  int max_conns = 4096;    // accepted connections beyond this are refused
  size_t max_line_bytes = 1 << 20;   // one request line, newline excluded
  size_t write_buf_bytes = 4 << 20;  // buffered unread replies per connection
  int max_inflight_per_conn = 64;    // pipelined requests awaiting replies
  int accept_backoff_initial_ms = 10;   // EMFILE/ENFILE pause, doubles...
  int accept_backoff_max_ms = 1000;     // ...up to this ceiling
  int listen_backlog = 1024;
  /// Idle-connection reaper: a connection with no socket activity and no
  /// request in flight for this long is disconnected and counted in
  /// FrontEndStats::idle_disconnects. 0 disables the reaper.
  int idle_timeout_ms = 0;
};

/// Transport-level identity of the remote end of a connection, captured once
/// at accept time. The protocol layer uses it to gate admin operations
/// (add_entity is loopback-only); stdio and in-process test transports count
/// as loopback by construction.
struct PeerInfo {
  bool loopback = false;  // peer address is in 127.0.0.0/8
  std::string address;    // dotted quad, for structured error replies / logs
};

/// Replies the transport issues on its own behalf, before the protocol
/// handler ever sees the bytes. The handler renders them so the wire format
/// stays a protocol decision.
enum class TransportError {
  kLineTooLong,      // request line exceeded max_line_bytes; conn will close
  kTooManyInflight,  // per-connection pipelining cap hit; request dropped
  kServerFull,       // max_conns reached; sent best-effort before refusing
};

/// Protocol layer seen by the transport. Implementations must be
/// thread-safe: lines arrive on any I/O thread.
class LineHandler {
 public:
  virtual ~LineHandler() = default;

  /// Completion for one request line; carries the reply line (no trailing
  /// newline). Thread-safe, may be invoked from any thread, exactly once.
  /// Invoking it after the client disconnected is safe (the reply is
  /// dropped).
  using Done = std::function<void(std::string reply)>;

  /// Handles one framed request line. MUST NOT block the calling I/O
  /// thread on slow work — hand off and invoke `done` later instead.
  /// Calling `done` synchronously is allowed (cheap inline ops).
  virtual void HandleLineAsync(std::string line, Done done) = 0;

  /// Peer-aware variant the transport actually calls: carries where the
  /// request came from so the protocol can authorize per-peer (admin ops).
  /// Default forwards to HandleLineAsync, so peer-agnostic handlers need not
  /// care.
  virtual void HandleLineFrom(std::string line, const PeerInfo& peer,
                              Done done) {
    (void)peer;
    HandleLineAsync(std::move(line), std::move(done));
  }

  /// Renders a transport-originated error as one reply line.
  virtual std::string TransportErrorReply(TransportError error) = 0;
};

/// Monotonic transport counters plus the active-connection gauge, readable
/// at any time (relaxed atomics; consistency is per-field).
struct FrontEndStats {
  int64_t accepted = 0;
  int64_t active_connections = 0;
  int64_t rejected_connections = 0;     // refused at max_conns
  int64_t accept_errors = 0;            // transient accept failures survived
  int64_t overlong_line_disconnects = 0;
  int64_t slow_client_disconnects = 0;  // write buffer cap exceeded
  int64_t idle_disconnects = 0;         // reaped by the idle timeout
};

/// Epoll-based newline-framed TCP front end.
///
/// A handful of I/O threads own thousands of non-blocking loopback
/// connections with edge-triggered readiness. Loop 0 additionally owns the
/// listener and hands accepted fds to the loops round-robin. Each
/// connection frames newline-delimited request lines out of a bounded read
/// buffer, dispatches them to the LineHandler, and writes replies back in
/// request order (pipelining-safe) through a bounded write buffer. Nothing
/// on an I/O thread ever blocks:
///
///   - a client streaming bytes with no newline is cut off at
///     max_line_bytes with a structured error reply, then disconnected;
///   - a client that stops reading its replies accumulates at most
///     write_buf_bytes of buffered output, then is disconnected;
///   - a failed send() tears the connection down immediately — no compute
///     is spent on replies that can never be delivered;
///   - transient accept() failures (EMFILE/ENFILE/ENOBUFS/ENOMEM) pause the
///     listener with exponential backoff instead of killing it.
class FrontEnd {
 public:
  FrontEnd(FrontEndOptions options, LineHandler* handler);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Binds 127.0.0.1:options.port, spawns the I/O threads, starts
  /// accepting. Signals commonly handled on a serving main thread (SIGHUP,
  /// SIGINT, SIGTERM) are blocked in the I/O threads so process-directed
  /// delivery keeps landing where the application handles it.
  util::Status Start();

  /// Actual bound port (after Start with port 0).
  int port() const { return port_; }

  /// Closes the listener and every connection, stops and joins the I/O
  /// threads. In-flight handler completions become no-ops. Idempotent.
  void Stop();

  FrontEndStats stats() const;

 private:
  friend class Connection;
  friend class Acceptor;
  struct Loop;

  void HandleAccept();
  void AcceptPause(int listen_fd);
  void AdoptConnection(Loop* loop, int fd);
  /// Loop-thread-only: arms the recurring idle sweep for one loop.
  void ScheduleIdleSweep(Loop* loop);
  /// Loop-thread-only: reaps this loop's connections idle past the timeout.
  void SweepIdle(Loop* loop);

  const FrontEndOptions options_;
  LineHandler* const handler_;

  int listen_fd_ = -1;
  int port_ = 0;
  bool started_ = false;
  bool stopped_ = false;

  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<std::thread> threads_;
  size_t next_loop_ = 0;  // round-robin target for accepted fds (loop 0 only)
  std::unique_ptr<Acceptor> acceptor_;
  int accept_backoff_ms_ = 0;  // 0 = not currently backing off

  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> active_conns_{0};
  std::atomic<int64_t> rejected_conns_{0};
  std::atomic<int64_t> accept_errors_{0};
  std::atomic<int64_t> overlong_disconnects_{0};
  std::atomic<int64_t> slow_disconnects_{0};
  std::atomic<int64_t> idle_disconnects_{0};
};

}  // namespace bootleg::net

#endif  // BOOTLEG_NET_FRONT_END_H_

#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace bootleg::net {

namespace {
constexpr int kMaxEventsPerWait = 128;
constexpr int kIdleTimeoutMs = 500;  // wake to re-check stop flag when idle
}  // namespace

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

util::Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return util::Status::Internal(std::string("epoll_create1: ") +
                                  std::strerror(errno));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return util::Status::Internal(std::string("eventfd: ") +
                                  std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;  // nullptr marks the wakeup fd in the dispatch loop
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) < 0) {
    return util::Status::Internal(std::string("epoll_ctl(wake): ") +
                                  std::strerror(errno));
  }
  return util::Status::OK();
}

int64_t EventLoop::NowMs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1000 + ts.tv_nsec / 1000000;
}

void EventLoop::Run() {
  BOOTLEG_CHECK_MSG(epoll_fd_ >= 0, "EventLoop::Run before Init");
  loop_thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
  epoll_event events[kMaxEventsPerWait];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int timeout = NextTimeoutMs(NowMs());
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEventsPerWait, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      BOOTLEG_CHECK_MSG(false,
                        std::string("epoll_wait: ") + std::strerror(errno));
    }
    dispatching_ = true;
    for (int i = 0; i < n; ++i) {
      auto* handler = static_cast<FdHandler*>(events[i].data.ptr);
      if (handler == nullptr) {
        DrainWakeups();
        continue;
      }
      if (quarantined_.count(handler) != 0) continue;
      handler->OnEvents(events[i].events);
    }
    dispatching_ = false;
    quarantined_.clear();
    RunPosted();
    RunDueTimers(NowMs());
  }
  // One final drain so Stop() posted from another thread cannot strand
  // closures (e.g. close-all-connections) that were queued before the flag.
  RunPosted();
  loop_thread_id_.store(std::thread::id(), std::memory_order_release);
}

void EventLoop::Stop() {
  stopping_.store(true, std::memory_order_release);
  Wake();
}

void EventLoop::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void EventLoop::RunAfter(int64_t delay_ms, std::function<void()> fn) {
  Timer t;
  t.due_ms = NowMs() + (delay_ms < 0 ? 0 : delay_ms);
  t.seq = timer_seq_++;
  t.fn = std::move(fn);
  timers_.push(std::move(t));
}

util::Status EventLoop::AddFd(int fd, uint32_t events, FdHandler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return util::Status::Internal(std::string("epoll_ctl(add): ") +
                                  std::strerror(errno));
  }
  return util::Status::OK();
}

util::Status EventLoop::ModFd(int fd, uint32_t events, FdHandler* handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = handler;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return util::Status::Internal(std::string("epoll_ctl(mod): ") +
                                  std::strerror(errno));
  }
  return util::Status::OK();
}

void EventLoop::DelFd(int fd, FdHandler* handler) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  if (dispatching_) quarantined_.insert(handler);
}

void EventLoop::Wake() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  // A full eventfd counter (impossible at 2^64) or EINTR both leave the loop
  // already due for a wakeup; nothing to handle.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::DrainWakeups() {
  uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) == sizeof(count)) {
  }
}

void EventLoop::RunPosted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (auto& fn : batch) fn();
}

void EventLoop::RunDueTimers(int64_t now_ms) {
  while (!timers_.empty() && timers_.top().due_ms <= now_ms) {
    // Copy out before pop: the callback may arm new timers.
    std::function<void()> fn = timers_.top().fn;
    timers_.pop();
    fn();
  }
}

int EventLoop::NextTimeoutMs(int64_t now_ms) const {
  if (timers_.empty()) return kIdleTimeoutMs;
  const int64_t delta = timers_.top().due_ms - now_ms;
  if (delta <= 0) return 0;
  return delta > kIdleTimeoutMs ? kIdleTimeoutMs : static_cast<int>(delta);
}

}  // namespace bootleg::net

#!/usr/bin/env bash
# Full verification gate for the durability + serving work (and the tier-1
# suite):
#
#   1. Release build + complete ctest suite (tier-1 gate).
#   2. ASan build: corruption fuzzing, checkpoint/resume, io, parallel,
#      serve, backend equivalence.
#   3. TSan build: checkpointed data-parallel training + parallel + serve +
#      backend equivalence.
#   4. CLI crash-recovery drill: train with checkpointing, kill the run
#      mid-checkpoint-write via fault injection (leaving a torn temp file),
#      corrupt the newest checkpoint, resume, and verify the final model is
#      byte-identical to an uninterrupted run.
#   5. Serve smoke drill: bring up bootleg_serve on the tiny model from (4),
#      drive it over stdin and TCP with concurrent clients (malformed lines
#      included), assert stats are sane, hot-reload via SIGHUP, and verify a
#      clean SIGTERM shutdown.
#   6. Observability self-check: metrics/trace unit tests, the stats op must
#      export the metrics registry (queue-wait histogram included) and
#      per-stage spans covering a request end to end, and `train --trace_out`
#      must emit a JSONL trace covering a full training step.
#   7. Embedding-store drill: export the trained model to a mmap store,
#      verify every shard checksum, serve from the store, then export a new
#      int8 generation and SIGHUP-swap it in under concurrent load — no
#      request may drop, and stats must report the new generation.
#   8. Backend drill: serve the same requests under --backend ref, simd, and
#      simd_q8. The ref and simd reply streams must be byte-identical (on
#      hosts without AVX2 the simd backend's probe delegates to the reference
#      kernels, so the check holds everywhere), simd_q8 must answer every
#      request without error, and the stats op must name the active backend.
#   9. Overload drill: hammer the epoll front end with ~10x more pipelined
#      clients than the admission watermark admits, plus slowloris, dead
#      readers and an over-cap request line. Every overflow request must get
#      a structured overloaded/deadline_exceeded/transport reply (no stalls,
#      no crash), every hostile client must be disconnected, accepted-request
#      p99 must stay bounded, RSS must not balloon, and stats must stay
#      reachable afterwards and report the shedding counters.
#  10. Live-add drill: serve from the store, add_entity a never-trained
#      entity while concurrent clients keep disambiguating (the generation
#      swap is in-process — no SIGHUP, no restart, zero dropped requests),
#      query the new entity immediately, compact the delta chain with
#      `bootleg_cli compact`, SIGHUP onto the flat generation, and verify
#      the entity still serves and the store still checks out.
#  11. Residency drill: serve the same request set from an unmanaged store
#      and from one budgeted to 50% of its mapped bytes
#      (--resident_budget_mb). The reply streams must be byte-identical
#      (advisories never change gathered bytes), stats must report the
#      store residency block (budget, resident bytes, cold faults,
#      evictions, prefetches), the sweep-sampled resident bytes must honor
#      the budget, and the budgeted server's VmRSS must stay bounded by the
#      unmanaged server's.
#  12. Robustness drill: raw-text serving end to end. A `disambiguate_text`
#      request carrying one sentence must reply byte-identically to the
#      pre-segmented `disambiguate` op; a multi-sentence document must
#      report per-mention sentence indices and document-level spans and be
#      deterministic across repeats; hostile inputs (overlong tokens,
#      punctuation-only, empty, noisy typos, with and without
#      --char_fallback) must always get structured replies; and
#      `bootleg_cli eval --noise_rates` output must be byte-identical
#      across runs (the noisy slices are seeded, not sampled).
#
# Usage: tools/check.sh [--skip-san]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SAN=0
[[ "${1:-}" == "--skip-san" ]] && SKIP_SAN=1

JOBS="$(nproc)"

echo "==> [1/12] Release build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" >/dev/null
(cd build && ctest --output-on-failure)

if [[ "$SKIP_SAN" == "0" ]]; then
  echo "==> [2/12] ASan: fuzz + checkpoint + io + parallel + serve"
  cmake -B build-asan -S . -DBOOTLEG_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$JOBS" \
    --target io_fuzz_test checkpoint_test util_test robustness_test \
             parallel_test serve_test metrics_test store_test \
             backend_test net_test index_test robust_test >/dev/null
  for t in io_fuzz_test checkpoint_test util_test robustness_test \
           parallel_test serve_test metrics_test store_test backend_test \
           net_test index_test robust_test; do
    echo "  asan: $t"
    ./build-asan/tests/"$t" >/dev/null
  done

  echo "==> [3/12] TSan: checkpointed parallel training + serving under load"
  cmake -B build-tsan -S . -DBOOTLEG_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$JOBS" \
    --target checkpoint_test parallel_test serve_test metrics_test \
             store_test backend_test net_test index_test robust_test >/dev/null
  for t in checkpoint_test parallel_test serve_test metrics_test store_test \
           backend_test net_test index_test robust_test; do
    echo "  tsan: $t"
    ./build-tsan/tests/"$t" >/dev/null
  done
else
  echo "==> [2/12],[3/12] sanitizer stages skipped (--skip-san)"
fi

echo "==> [4/12] CLI kill-at-step-K -> resume -> bit-identical verify"
CLI=./build/tools/bootleg_cli
WORK="$(mktemp -d /tmp/bootleg_check.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen --out "$WORK/data" --scale micro --pages 30 >/dev/null

TRAIN_FLAGS=(--data "$WORK/data" --epochs 2 --threads 2 --checkpoint_every 2)

# Uninterrupted reference run (checkpointing on, so both runs take the same
# stateful loop; its own dir so the killed run can't see its snapshots).
"$CLI" train "${TRAIN_FLAGS[@]}" --model "$WORK/ref.bin" \
  --checkpoint_dir "$WORK/ckpt_ref" >/dev/null

# Killed run: stop at step 5, and inject a write fault so the in-flight
# checkpoint write at step 4 tears mid-file. The byte budget admits roughly
# 1.5 checkpoints, so ckpt_2 lands whole and ckpt_4 is torn. (Any reference
# checkpoint works for sizing — they are all the same shape.)
CKPT_BYTES=$(stat -c%s "$(ls "$WORK/ckpt_ref"/ckpt_*.bin | head -1)")
BUDGET=$((CKPT_BYTES * 3 / 2))
set +e
"$CLI" train "${TRAIN_FLAGS[@]}" --model "$WORK/killed.bin" \
  --checkpoint_dir "$WORK/ckpt" --max_steps 5 \
  --fault_fail_after "$BUDGET" >/dev/null 2>&1
KILLED_RC=$?
set -e
[[ "$KILLED_RC" != "0" ]] || { echo "FAIL: killed run exited cleanly"; exit 1; }
[[ ! -f "$WORK/killed.bin" ]] || { echo "FAIL: killed run saved a model"; exit 1; }
ls "$WORK/ckpt"/*.tmp >/dev/null 2>&1 \
  || { echo "FAIL: no torn temp file left by the simulated crash"; exit 1; }
ls "$WORK/ckpt"/ckpt_*.bin >/dev/null 2>&1 \
  || { echo "FAIL: no durable checkpoint survived the crash"; exit 1; }

# Corrupt the newest surviving checkpoint too: recovery must fall back.
NEWEST=$(ls "$WORK/ckpt"/ckpt_*.bin | sort -t_ -k2 -n | tail -1)
if [[ $(ls "$WORK/ckpt"/ckpt_*.bin | wc -l) -gt 1 ]]; then
  printf '\x7f' | dd of="$NEWEST" bs=1 seek=40 conv=notrunc status=none
fi

# Resume and finish; the final model must match the reference byte-for-byte.
"$CLI" train "${TRAIN_FLAGS[@]}" --model "$WORK/resumed.bin" \
  --checkpoint_dir "$WORK/ckpt" --resume | grep -q "resumed from checkpoint" \
  || { echo "FAIL: resume did not pick up a checkpoint"; exit 1; }
cmp "$WORK/ref.bin" "$WORK/resumed.bin" \
  || { echo "FAIL: resumed model differs from uninterrupted run"; exit 1; }

echo "==> [5/12] serve smoke drill: stdin + TCP, concurrency, SIGHUP, shutdown"
SERVE=./build/tools/bootleg_serve

# --- stdin transport: health, disambiguate, malformed line, stats. ----------
STDIN_OUT=$(printf '%s\n' \
  '{"op": "health"}' \
  '{"op": "disambiguate", "text": "the first page mentions a rare entity"}' \
  'this line is not json at all {{{' \
  '{"op": "disambiguate"}' \
  '{"op": "stats"}' \
  | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin 2>/dev/null)
[[ $(echo "$STDIN_OUT" | wc -l) == 5 ]] \
  || { echo "FAIL: stdin serve: expected 5 replies"; exit 1; }
echo "$STDIN_OUT" | sed -n 1p | grep -q '"status": *"serving"' \
  || { echo "FAIL: stdin serve: bad health reply"; exit 1; }
echo "$STDIN_OUT" | sed -n 2p | grep -q '"ok": *true' \
  || { echo "FAIL: stdin serve: disambiguate failed"; exit 1; }
echo "$STDIN_OUT" | sed -n 3p | grep -q '"ok": *false' \
  || { echo "FAIL: stdin serve: malformed line not rejected"; exit 1; }
echo "$STDIN_OUT" | sed -n 4p | grep -q '"ok": *false' \
  || { echo "FAIL: stdin serve: missing text not rejected"; exit 1; }
echo "$STDIN_OUT" | sed -n 5p \
  | grep -q '"errors": *2.*"p50_us"' \
  || { echo "FAIL: stdin serve: stats missing error count or latency"; exit 1; }

# --- TCP transport: concurrent clients, SIGHUP hot-reload, clean SIGTERM. ---
"$SERVE" --data "$WORK/data" --checkpoint_dir "$WORK/ckpt_ref" --port 0 \
  2>"$WORK/serve.log" &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/serve.log")
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: serve: no listening port"; exit 1; }

# Helper: one request/reply exchange over a fresh connection via /dev/tcp.
serve_rpc() {
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf '%s\n' "$1" >&3
  local reply
  IFS= read -r reply <&3
  exec 3<&- 3>&-
  printf '%s\n' "$reply"
}

CLIENT_PIDS=()
for c in 1 2 3 4; do
  (
    for _ in 1 2 3 4 5; do
      serve_rpc '{"op": "disambiguate", "text": "entities appear on every page"}' \
        | grep -q '"ok": *true' || exit 1
    done
    serve_rpc 'not json' | grep -q '"ok": *false' || exit 1
  ) &
  CLIENT_PIDS+=($!)
done
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" || { echo "FAIL: serve: concurrent TCP client failed"; exit 1; }
done

STATS=$(serve_rpc '{"op": "stats"}')
echo "$STATS" | grep -q '"requests": *20' \
  || { echo "FAIL: serve: expected 20 requests in stats: $STATS"; exit 1; }
echo "$STATS" | grep -q '"errors": *4' \
  || { echo "FAIL: serve: expected 4 errors in stats: $STATS"; exit 1; }
echo "$STATS" | grep -Eq '"p50_us": *[1-9]' \
  || { echo "FAIL: serve: latency percentiles missing: $STATS"; exit 1; }

kill -HUP "$SERVE_PID"
sleep 0.2
serve_rpc '{"op": "disambiguate", "text": "one more request after reload"}' \
  | grep -q '"ok": *true' \
  || { echo "FAIL: serve: request after SIGHUP failed"; exit 1; }
serve_rpc '{"op": "stats"}' | grep -Eq '"reloads": *[1-9]' \
  || { echo "FAIL: serve: SIGHUP did not trigger a reload"; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" \
  || { echo "FAIL: serve: non-zero exit on SIGTERM"; exit 1; }

echo "==> [6/12] observability: registry + spans in stats, train --trace_out"
./build/tests/metrics_test >/dev/null \
  || { echo "FAIL: metrics_test failed"; exit 1; }

# A fresh stdin server, driven with a sentence containing a real alias (pulled
# from the corpus so the request reaches the model): stats must carry the
# process metrics registry (micro-batcher queue wait) and spans for the whole
# request path (serve.request down to the model's infer.* stages).
ALIAS=$("$CLI" inspect --data "$WORK/data" --n 1 \
  | sed -n 's/.*\[\([^]|>-]*\)->.*/\1/p' | head -1)
[[ -n "$ALIAS" ]] || { echo "FAIL: could not extract an alias"; exit 1; }
OBS_STATS=$(printf '%s\n' \
  "{\"op\": \"disambiguate\", \"text\": \"the $ALIAS appears here\"}" \
  '{"op": "stats"}' \
  | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin 2>/dev/null \
  | sed -n 2p)
for key in '"registry"' '"spans"' 'serve.queue_wait_us' '"span": *"serve.request"' \
           '"span": *"infer.encode"' '"span": *"infer.score"'; do
  echo "$OBS_STATS" | grep -Eq "$key" \
    || { echo "FAIL: stats missing $key: $OBS_STATS"; exit 1; }
done

# --no_trace must suppress the span report but keep the stats op working.
printf '%s\n' \
  "{\"op\": \"disambiguate\", \"text\": \"the $ALIAS appears here\"}" \
  '{"op": "stats"}' \
  | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin --no_trace \
      2>/dev/null \
  | sed -n 2p | grep -Eq '"spans": *\[\]' \
  || { echo "FAIL: --no_trace still reported spans"; exit 1; }

# Traced training run (= flag syntax on purpose): the JSONL must cover a full
# step — forward/backward, the optimizer, and the epoch that contains them.
"$CLI" train --data "$WORK/data" --model "$WORK/traced.bin" --epochs 1 \
  --trace_out="$WORK/trace.jsonl" >/dev/null
for stage in train.epoch train.forward_backward train.step nn.adam.step; do
  grep -q "\"span\": \"$stage\"" "$WORK/trace.jsonl" \
    || { echo "FAIL: trace_out missing stage $stage"; exit 1; }
done

echo "==> [7/12] store drill: export -> verify -> serve -> SIGHUP generation swap"
"$CLI" export-store --data "$WORK/data" --model "$WORK/ref.bin" \
  --out "$WORK/store/gen_000001" --quant float32 >/dev/null
"$CLI" store --dir "$WORK/store" --verify >/dev/null \
  || { echo "FAIL: store verify failed"; exit 1; }

"$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" \
  --store_dir "$WORK/store" --port 0 2>"$WORK/serve_store.log" &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/serve_store.log")
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: store serve: no listening port"; exit 1; }

serve_rpc "{\"op\": \"disambiguate\", \"text\": \"the $ALIAS appears here\"}" \
  | grep -q '"ok": *true' \
  || { echo "FAIL: store serve: disambiguate failed"; exit 1; }
STORE_STATS=$(serve_rpc '{"op": "stats"}')
echo "$STORE_STATS" | grep -q '"generation": *1' \
  || { echo "FAIL: store serve: stats missing generation 1: $STORE_STATS"; exit 1; }
echo "$STORE_STATS" | grep -Eq '"resident_shards": *[1-9]' \
  || { echo "FAIL: store serve: no resident shards: $STORE_STATS"; exit 1; }

# Export a quantized second generation, then swap it in live: concurrent
# clients keep hammering across the SIGHUP and none may see a failure.
"$CLI" export-store --data "$WORK/data" --model "$WORK/ref.bin" \
  --out "$WORK/store/gen_000002" --quant int8 >/dev/null
CLIENT_PIDS=()
for c in 1 2 3; do
  (
    for _ in $(seq 1 8); do
      serve_rpc "{\"op\": \"disambiguate\", \"text\": \"the $ALIAS appears here\"}" \
        | grep -q '"ok": *true' || exit 1
    done
  ) &
  CLIENT_PIDS+=($!)
done
kill -HUP "$SERVE_PID"
for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" \
    || { echo "FAIL: store serve: request dropped across generation swap"; exit 1; }
done
sleep 0.2
STORE_STATS=$(serve_rpc '{"op": "stats"}')
echo "$STORE_STATS" | grep -q '"generation": *2' \
  || { echo "FAIL: store serve: SIGHUP did not swap to generation 2: $STORE_STATS"; exit 1; }
echo "$STORE_STATS" | grep -q '"dtype": *"int8"' \
  || { echo "FAIL: store serve: generation 2 is not the int8 export: $STORE_STATS"; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" \
  || { echo "FAIL: store serve: non-zero exit on SIGTERM"; exit 1; }

echo "==> [8/12] backend drill: ref vs simd byte-identical, simd_q8 clean"
BACKEND_REQS=$(printf '%s\n' \
  "{\"op\": \"disambiguate\", \"text\": \"the $ALIAS appears here\"}" \
  '{"op": "disambiguate", "text": "entities appear on every page"}' \
  '{"op": "disambiguate", "text": "the first page mentions a rare entity"}')

backend_serve() {  # $1 = backend spec; replies on stdout
  echo "$BACKEND_REQS" \
    | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin \
        --backend "$1" 2>/dev/null
}

REF_REPLIES=$(backend_serve ref)
SIMD_REPLIES=$(backend_serve simd)
[[ $(echo "$REF_REPLIES" | wc -l) == 3 ]] \
  || { echo "FAIL: backend drill: ref backend dropped replies"; exit 1; }
[[ "$REF_REPLIES" == "$SIMD_REPLIES" ]] \
  || { echo "FAIL: backend drill: simd replies differ from ref"; exit 1; }

# simd_q8 serves quantized weights: predictions may legitimately differ from
# float only on near-ties, but every request must succeed, and stats must
# report the backend block.
Q8_OUT=$(printf '%s\n' "$BACKEND_REQS" '{"op": "stats"}' \
  | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin \
      --backend simd_q8 2>/dev/null)
[[ $(echo "$Q8_OUT" | wc -l) == 4 ]] \
  || { echo "FAIL: backend drill: simd_q8 dropped replies"; exit 1; }
[[ $(echo "$Q8_OUT" | sed -n 1,3p | grep -c '"ok": *true') == 3 ]] \
  || { echo "FAIL: backend drill: simd_q8 request errored"; exit 1; }
Q8_STATS=$(echo "$Q8_OUT" | sed -n 4p)
echo "$Q8_STATS" | grep -q '"errors": *0' \
  || { echo "FAIL: backend drill: simd_q8 stats report errors: $Q8_STATS"; exit 1; }
echo "$Q8_STATS" | grep -q '"backend"' \
  || { echo "FAIL: backend drill: stats missing backend block: $Q8_STATS"; exit 1; }
echo "$Q8_STATS" | grep -q '"name": *"simd_q8"' \
  || { echo "FAIL: backend drill: stats missing backend name: $Q8_STATS"; exit 1; }
echo "$Q8_STATS" | grep -q '"quant_block": *32' \
  || { echo "FAIL: backend drill: stats missing quant block: $Q8_STATS"; exit 1; }

# An unknown backend must be rejected at startup, not served silently.
if echo '{"op": "health"}' \
    | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin \
        --backend warp 2>/dev/null >/dev/null; then
  echo "FAIL: backend drill: unknown backend accepted"; exit 1
fi

echo "==> [9/12] overload drill: admission control, deadline shedding, hostile clients"
DRILL=./build/tools/overload_drill

"$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --port 0 \
  --max_batch 8 --max_wait_us 200 --max_queue 32 --workers 1 \
  --io_threads 2 --max_conns 256 --admission_watermark 24 \
  --max_line_bytes 65536 --write_buf_bytes 65536 \
  2>"$WORK/serve_overload.log" &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/serve_overload.log")
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: overload serve: no listening port"; exit 1; }
RSS_BEFORE=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status")

# ~10x the watermark in outstanding requests (48 conns x 8 pipelined vs a
# watermark of 24), with a hostile-client pool alongside. The drill itself
# asserts: zero stalls, and every slowloris/dead-reader/big-blob client cut.
DRILL_OUT=$("$DRILL" --port "$PORT" --conns 48 --pipeline 8 --requests 50 \
  --deadline_ms 100 --slowloris 4 --deadreaders 3 --bigblobs 2) \
  || { echo "FAIL: overload drill: $DRILL_OUT"; exit 1; }
echo "  $DRILL_OUT"

drill_field() { echo "$DRILL_OUT" | sed -n "s/.*$1=\([0-9-]*\).*/\1/p"; }
OK_N=$(drill_field ok); OVER_N=$(drill_field overloaded)
SHED_N=$(drill_field deadline_exceeded); P99_N=$(drill_field p99_ok_us)
[[ "$OK_N" -gt 0 ]] \
  || { echo "FAIL: overload drill: no request succeeded"; exit 1; }
[[ $((OVER_N + SHED_N)) -gt 0 ]] \
  || { echo "FAIL: overload drill: 10x load produced no structured sheds"; exit 1; }
[[ "$P99_N" -lt 5000000 ]] \
  || { echo "FAIL: overload drill: accepted p99 ${P99_N}us unbounded"; exit 1; }

# The process survived with bounded memory (hostile buffers are capped).
kill -0 "$SERVE_PID" || { echo "FAIL: overload drill: server died"; exit 1; }
RSS_AFTER=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status")
[[ $((RSS_AFTER - RSS_BEFORE)) -lt 153600 ]] \
  || { echo "FAIL: overload drill: RSS grew $((RSS_AFTER - RSS_BEFORE))kB"; exit 1; }

# Stats stay reachable and report the shedding machinery.
OVERLOAD_STATS=$(serve_rpc '{"op": "stats"}')
for key in '"shed"' '"overloaded"' '"accept_errors"' '"net"' '"connections"'; do
  echo "$OVERLOAD_STATS" | grep -q "$key" \
    || { echo "FAIL: overload drill: stats missing $key"; exit 1; }
done

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" \
  || { echo "FAIL: overload drill: non-zero exit on SIGTERM"; exit 1; }

echo "==> [10/12] live-add drill: add_entity under load -> in-process swap -> compact"
# Serve from the stage-7 store (newest generation: the int8 gen_000002). The
# idle reaper runs with a generous timeout so it cannot touch the drill's
# request-bearing connections — it just has to not misfire.
"$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" \
  --store_dir "$WORK/store" --port 0 --idle_timeout_ms 30000 \
  2>"$WORK/serve_live.log" &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
    "$WORK/serve_live.log")
  [[ -n "$PORT" ]] && break
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "FAIL: live-add: no listening port"; exit 1; }

# Concurrent disambiguate load spanning the add_entity call and its
# in-process generation swap: zero drops allowed.
CLIENT_PIDS=()
for c in 1 2 3; do
  (
    for _ in $(seq 1 12); do
      serve_rpc "{\"op\": \"disambiguate\", \"text\": \"the $ALIAS appears here\"}" \
        | grep -q '"ok": *true' || exit 1
    done
  ) &
  CLIENT_PIDS+=($!)
done

# The entity exists in no corpus, no checkpoint, no export. One request makes
# it servable: induce from the frozen tables, publish chained gen_000003,
# adopt in-process — no SIGHUP, no restart.
ADD_REPLY=$(serve_rpc '{"op": "add_entity", "title": "zzdrillentity"}')
echo "$ADD_REPLY" | grep -q '"ok": *true' \
  || { echo "FAIL: live-add: add_entity rejected: $ADD_REPLY"; exit 1; }
echo "$ADD_REPLY" | grep -q '"generation": *3' \
  || { echo "FAIL: live-add: no chained generation: $ADD_REPLY"; exit 1; }

# Immediately servable, and the prediction is the new entity (its alias is
# brand new, so it is the only candidate).
serve_rpc '{"op": "disambiguate", "text": "zzdrillentity appears here"}' \
  | grep -q '"title": *"zzdrillentity"' \
  || { echo "FAIL: live-add: new entity not served"; exit 1; }

for pid in "${CLIENT_PIDS[@]}"; do
  wait "$pid" \
    || { echo "FAIL: live-add: request dropped across live add"; exit 1; }
done

LIVE_STATS=$(serve_rpc '{"op": "stats"}')
echo "$LIVE_STATS" | grep -q '"generation": *3' \
  || { echo "FAIL: live-add: stats missing generation 3: $LIVE_STATS"; exit 1; }
echo "$LIVE_STATS" | grep -q '"induced_entities": *1' \
  || { echo "FAIL: live-add: stats missing induced entity: $LIVE_STATS"; exit 1; }
echo "$LIVE_STATS" | grep -q '"idle_disconnects": *0' \
  || { echo "FAIL: live-add: idle reaper misfired: $LIVE_STATS"; exit 1; }

# A non-loopback spec parse cannot be driven from here (every /dev/tcp client
# is loopback), but a malformed spec must come back structured, not crash.
serve_rpc '{"op": "add_entity", "title": "zzdrillentity"}' \
  | grep -q '"code": *"bad_request"' \
  || { echo "FAIL: live-add: duplicate title not rejected"; exit 1; }

# Compact the chain (the server keeps serving the chain meanwhile), SIGHUP
# onto the flat generation, and re-verify: same entity, clean store.
"$CLI" compact --dir "$WORK/store" | grep -q "into flat generation 4" \
  || { echo "FAIL: live-add: compact did not produce generation 4"; exit 1; }
"$CLI" store --dir "$WORK/store" --verify >/dev/null \
  || { echo "FAIL: live-add: compacted store failed verify"; exit 1; }
kill -HUP "$SERVE_PID"
sleep 0.3
serve_rpc '{"op": "disambiguate", "text": "zzdrillentity appears here"}' \
  | grep -q '"title": *"zzdrillentity"' \
  || { echo "FAIL: live-add: entity lost after compaction swap"; exit 1; }
serve_rpc '{"op": "stats"}' | grep -q '"generation": *4' \
  || { echo "FAIL: live-add: SIGHUP did not adopt the flat generation"; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" \
  || { echo "FAIL: live-add: non-zero exit on SIGTERM"; exit 1; }

echo "==> [11/12] residency drill: budget-constrained serve, identical replies, bounded RSS"
RES_STORE="$WORK/res_store"
"$CLI" export-store --data "$WORK/data" --model "$WORK/ref.bin" \
  --out "$RES_STORE/gen_000001" --quant float32 >/dev/null

# The fixed request set both servers answer; replies must match byte for byte.
RES_TEXTS=("the $ALIAS appears here" \
           "entities appear on every page" \
           "the first page mentions a rare entity" \
           "one more $ALIAS mention" \
           "rare entities in the tail")

res_serve_start() {  # $1 = extra flags, $2 = log file; sets SERVE_PID + PORT
  # shellcheck disable=SC2086
  "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" \
    --store_dir "$RES_STORE" --port 0 $1 2>"$2" &
  SERVE_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$2")
    [[ -n "$PORT" ]] && break
    sleep 0.1
  done
  [[ -n "$PORT" ]] || { echo "FAIL: residency: no listening port"; exit 1; }
}

res_replay() {  # $1 = output file: 4 rounds over the request set, in order
  : >"$1"
  for _ in 1 2 3 4; do
    for text in "${RES_TEXTS[@]}"; do
      serve_rpc "{\"op\": \"disambiguate\", \"text\": \"$text\"}" >>"$1"
    done
  done
}

# Reference pass: unmanaged mmap. Record replies, mapped bytes, and VmRSS.
res_serve_start "" "$WORK/serve_res_unmanaged.log"
res_replay "$WORK/res_replies_unmanaged.txt"
RES_STATS=$(serve_rpc '{"op": "stats"}')
MAPPED_BYTES=$(echo "$RES_STATS" | sed -n 's/.*"mapped_bytes": *\([0-9]*\).*/\1/p')
[[ -n "$MAPPED_BYTES" && "$MAPPED_BYTES" -gt 0 ]] \
  || { echo "FAIL: residency: no mapped_bytes in stats: $RES_STATS"; exit 1; }
echo "$RES_STATS" | grep -q '"resident_budget_bytes"' \
  && { echo "FAIL: residency: unmanaged server reports a budget"; exit 1; }
RSS_UNMANAGED=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status")
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" \
  || { echo "FAIL: residency: unmanaged non-zero exit on SIGTERM"; exit 1; }

# Budgeted pass: 50% of the mapped bytes, fast sweeps so the clock runs
# several times inside the drill. Same requests, byte-identical replies.
BUDGET_MB=$(awk -v b="$MAPPED_BYTES" 'BEGIN{printf "%.6f", b / 2 / 1048576}')
BUDGET_BYTES=$((MAPPED_BYTES / 2))
res_serve_start "--resident_budget_mb $BUDGET_MB --resident_sweep_ms 50" \
  "$WORK/serve_res_budgeted.log"
res_replay "$WORK/res_replies_budgeted.txt"
grep -q '"ok": *true' "$WORK/res_replies_budgeted.txt" \
  || { echo "FAIL: residency: budgeted serve answered nothing"; exit 1; }
cmp "$WORK/res_replies_unmanaged.txt" "$WORK/res_replies_budgeted.txt" \
  || { echo "FAIL: residency: budgeted replies differ from unmanaged"; exit 1; }

sleep 0.3  # let the clock sweep after the load so the estimate is fresh
RES_STATS=$(serve_rpc '{"op": "stats"}')
for key in '"resident_budget_bytes"' '"resident_bytes"' '"cold_faults"' \
           '"evictions"' '"prefetch_issued"' '"resident_set_shards"'; do
  echo "$RES_STATS" | grep -q "$key" \
    || { echo "FAIL: residency: stats missing $key: $RES_STATS"; exit 1; }
done
# The fractional-MiB flag round-trips through a double, so allow a page of
# truncation slop on the reported budget.
REPORTED_BUDGET=$(echo "$RES_STATS" \
  | sed -n 's/.*"resident_budget_bytes": *\([0-9]*\).*/\1/p')
[[ -n "$REPORTED_BUDGET" ]] \
  || { echo "FAIL: residency: no budget in stats: $RES_STATS"; exit 1; }
BUDGET_DIFF=$((REPORTED_BUDGET - BUDGET_BYTES))
[[ "${BUDGET_DIFF#-}" -le 4096 ]] \
  || { echo "FAIL: residency: budget $REPORTED_BUDGET far from ${BUDGET_BYTES}: $RES_STATS"; exit 1; }
RESIDENT_BYTES=$(echo "$RES_STATS" \
  | sed -n 's/.*"resident_bytes": *\([0-9]*\).*/\1/p')
# The sweep-sampled resident set must honor the budget (slack: one shard's
# worth of pages for the always-pinned hottest shard plus page rounding).
SLACK=$((MAPPED_BYTES / 4 + 65536))
[[ "$RESIDENT_BYTES" -le $((BUDGET_BYTES + SLACK)) ]] \
  || { echo "FAIL: residency: resident ${RESIDENT_BYTES}B exceeds budget ${BUDGET_BYTES}B + slack"; exit 1; }

# Same work, bounded memory: the budgeted server must not out-grow the
# unmanaged one (generous slack absorbs allocator noise between runs).
RSS_BUDGETED=$(awk '/VmRSS/{print $2}' "/proc/$SERVE_PID/status")
[[ "$RSS_BUDGETED" -le $((RSS_UNMANAGED + 16384)) ]] \
  || { echo "FAIL: residency: budgeted VmRSS ${RSS_BUDGETED}kB vs unmanaged ${RSS_UNMANAGED}kB"; exit 1; }

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" \
  || { echo "FAIL: residency: budgeted non-zero exit on SIGTERM"; exit 1; }

echo "==> [12/12] robustness drill: raw-text serving, hostile inputs, deterministic noisy eval"

# --- Raw-text serving: one stdin session answers the pre-segmented op, the
# raw-text op on the same sentence, and a two-sentence document twice.
RT_TEXT="the $ALIAS appears here"
RT_DOC="$RT_TEXT . again the $ALIAS returns"
RT_OUT=$(printf '%s\n' \
  "{\"op\": \"disambiguate\", \"text\": \"$RT_TEXT\"}" \
  "{\"op\": \"disambiguate_text\", \"text\": \"$RT_TEXT\"}" \
  "{\"op\": \"disambiguate_text\", \"text\": \"$RT_DOC\"}" \
  "{\"op\": \"disambiguate_text\", \"text\": \"$RT_DOC\"}" \
  | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin 2>/dev/null)
[[ $(echo "$RT_OUT" | wc -l) == 4 ]] \
  || { echo "FAIL: raw-text drill: expected 4 replies"; exit 1; }
echo "$RT_OUT" | sed -n 1p | grep -q '"ok": *true' \
  || { echo "FAIL: raw-text drill: pre-segmented request failed"; exit 1; }
# Acceptance bar: single-sentence raw text is byte-identical to pre-segmented.
[[ "$(echo "$RT_OUT" | sed -n 1p)" == "$(echo "$RT_OUT" | sed -n 2p)" ]] \
  || { echo "FAIL: raw-text drill: disambiguate_text differs from disambiguate"; exit 1; }
# The document reply carries a second sentence with document-level spans.
echo "$RT_OUT" | sed -n 3p | grep -q '"sentence": *1' \
  || { echo "FAIL: raw-text drill: no sentence index 1 in document reply"; exit 1; }
echo "$RT_OUT" | sed -n 3p | grep -q "\"alias\": *\"$ALIAS\"" \
  || { echo "FAIL: raw-text drill: alias not extracted from raw document"; exit 1; }
# Same document, same reply: extraction and splitting are deterministic.
[[ "$(echo "$RT_OUT" | sed -n 3p)" == "$(echo "$RT_OUT" | sed -n 4p)" ]] \
  || { echo "FAIL: raw-text drill: repeated document replies differ"; exit 1; }

# --- Hostile raw text must always get a structured reply, never a crash:
# overlong token, punctuation-only, empty, lone terminators, typo noise.
LONG_TOKEN=$(printf 'x%.0s' $(seq 1 5000))
NOISY=$(echo "$RT_TEXT" | sed 's/the/teh/; s/appears/appaers/')
HOSTILE_OUT=$(printf '%s\n' \
  "{\"op\": \"disambiguate_text\", \"text\": \"$LONG_TOKEN\"}" \
  '{"op": "disambiguate_text", "text": ". . . ! ? ."}' \
  '{"op": "disambiguate_text", "text": ""}' \
  '{"op": "disambiguate_text", "text": "."}' \
  "{\"op\": \"disambiguate_text\", \"text\": \"$NOISY\"}" \
  | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin 2>/dev/null)
[[ $(echo "$HOSTILE_OUT" | wc -l) == 5 ]] \
  || { echo "FAIL: raw-text drill: hostile input dropped a reply"; exit 1; }
[[ $(echo "$HOSTILE_OUT" | grep -c '"ok":') == 5 ]] \
  || { echo "FAIL: raw-text drill: hostile reply not structured"; exit 1; }
echo "$HOSTILE_OUT" | sed -n 5p | grep -q '"ok": *true' \
  || { echo "FAIL: raw-text drill: noisy text rejected"; exit 1; }

# --char_fallback serves the same noisy traffic (typo-tolerant encoding).
printf '%s\n' "{\"op\": \"disambiguate_text\", \"text\": \"$NOISY\"}" \
  | "$SERVE" --data "$WORK/data" --model "$WORK/ref.bin" --stdin \
      --char_fallback 2>/dev/null \
  | grep -q '"ok": *true' \
  || { echo "FAIL: raw-text drill: --char_fallback serve failed"; exit 1; }

# --- Noisy eval slices are seeded, not sampled: two runs, identical bytes.
"$CLI" eval --data "$WORK/data" --model "$WORK/ref.bin" \
  --noise_rates 0.1,0.3 --noise_seed 7 >"$WORK/eval_a.txt"
"$CLI" eval --data "$WORK/data" --model "$WORK/ref.bin" \
  --noise_rates 0.1,0.3 --noise_seed 7 >"$WORK/eval_b.txt"
cmp "$WORK/eval_a.txt" "$WORK/eval_b.txt" \
  || { echo "FAIL: raw-text drill: noisy eval not deterministic"; exit 1; }
grep -q 'noisy@' "$WORK/eval_a.txt" \
  || { echo "FAIL: raw-text drill: eval missing noisy slices"; exit 1; }
grep -q 'overshadowed' "$WORK/eval_a.txt" \
  || { echo "FAIL: raw-text drill: eval missing overshadowed slice"; exit 1; }
grep -q 'prior-follow' "$WORK/eval_a.txt" \
  || { echo "FAIL: raw-text drill: eval missing prior-follow diagnostic"; exit 1; }

echo "OK: all checks passed"

#!/usr/bin/env bash
# Full verification gate for the durability work (and the tier-1 suite):
#
#   1. Release build + complete ctest suite (tier-1 gate).
#   2. ASan build: corruption fuzzing, checkpoint/resume, io, parallel tests.
#   3. TSan build: checkpointed data-parallel training + parallel tests.
#   4. CLI crash-recovery drill: train with checkpointing, kill the run
#      mid-checkpoint-write via fault injection (leaving a torn temp file),
#      corrupt the newest checkpoint, resume, and verify the final model is
#      byte-identical to an uninterrupted run.
#
# Usage: tools/check.sh [--skip-san]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SAN=0
[[ "${1:-}" == "--skip-san" ]] && SKIP_SAN=1

JOBS="$(nproc)"

echo "==> [1/4] Release build + full test suite"
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS" >/dev/null
(cd build && ctest --output-on-failure)

if [[ "$SKIP_SAN" == "0" ]]; then
  echo "==> [2/4] ASan: fuzz + checkpoint + io + parallel"
  cmake -B build-asan -S . -DBOOTLEG_SANITIZE=address >/dev/null
  cmake --build build-asan -j"$JOBS" \
    --target io_fuzz_test checkpoint_test util_test robustness_test \
             parallel_test >/dev/null
  for t in io_fuzz_test checkpoint_test util_test robustness_test \
           parallel_test; do
    echo "  asan: $t"
    ./build-asan/tests/"$t" >/dev/null
  done

  echo "==> [3/4] TSan: checkpointed parallel training"
  cmake -B build-tsan -S . -DBOOTLEG_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j"$JOBS" \
    --target checkpoint_test parallel_test >/dev/null
  for t in checkpoint_test parallel_test; do
    echo "  tsan: $t"
    ./build-tsan/tests/"$t" >/dev/null
  done
else
  echo "==> [2/4],[3/4] sanitizer stages skipped (--skip-san)"
fi

echo "==> [4/4] CLI kill-at-step-K -> resume -> bit-identical verify"
CLI=./build/tools/bootleg_cli
WORK="$(mktemp -d /tmp/bootleg_check.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen --out "$WORK/data" --scale micro --pages 30 >/dev/null

TRAIN_FLAGS=(--data "$WORK/data" --epochs 2 --threads 2 --checkpoint_every 2)

# Uninterrupted reference run (checkpointing on, so both runs take the same
# stateful loop; its own dir so the killed run can't see its snapshots).
"$CLI" train "${TRAIN_FLAGS[@]}" --model "$WORK/ref.bin" \
  --checkpoint_dir "$WORK/ckpt_ref" >/dev/null

# Killed run: stop at step 5, and inject a write fault so the in-flight
# checkpoint write at step 4 tears mid-file. The byte budget admits roughly
# 1.5 checkpoints, so ckpt_2 lands whole and ckpt_4 is torn. (Any reference
# checkpoint works for sizing — they are all the same shape.)
CKPT_BYTES=$(stat -c%s "$(ls "$WORK/ckpt_ref"/ckpt_*.bin | head -1)")
BUDGET=$((CKPT_BYTES * 3 / 2))
set +e
"$CLI" train "${TRAIN_FLAGS[@]}" --model "$WORK/killed.bin" \
  --checkpoint_dir "$WORK/ckpt" --max_steps 5 \
  --fault_fail_after "$BUDGET" >/dev/null 2>&1
KILLED_RC=$?
set -e
[[ "$KILLED_RC" != "0" ]] || { echo "FAIL: killed run exited cleanly"; exit 1; }
[[ ! -f "$WORK/killed.bin" ]] || { echo "FAIL: killed run saved a model"; exit 1; }
ls "$WORK/ckpt"/*.tmp >/dev/null 2>&1 \
  || { echo "FAIL: no torn temp file left by the simulated crash"; exit 1; }
ls "$WORK/ckpt"/ckpt_*.bin >/dev/null 2>&1 \
  || { echo "FAIL: no durable checkpoint survived the crash"; exit 1; }

# Corrupt the newest surviving checkpoint too: recovery must fall back.
NEWEST=$(ls "$WORK/ckpt"/ckpt_*.bin | sort -t_ -k2 -n | tail -1)
if [[ $(ls "$WORK/ckpt"/ckpt_*.bin | wc -l) -gt 1 ]]; then
  printf '\x7f' | dd of="$NEWEST" bs=1 seek=40 conv=notrunc status=none
fi

# Resume and finish; the final model must match the reference byte-for-byte.
"$CLI" train "${TRAIN_FLAGS[@]}" --model "$WORK/resumed.bin" \
  --checkpoint_dir "$WORK/ckpt" --resume | grep -q "resumed from checkpoint" \
  || { echo "FAIL: resume did not pick up a checkpoint"; exit 1; }
cmp "$WORK/ref.bin" "$WORK/resumed.bin" \
  || { echo "FAIL: resumed model differs from uninterrupted run"; exit 1; }

echo "OK: all checks passed"

// bootleg_serve — long-running disambiguation service over a trained model.
//
//   bootleg_serve --data DIR (--model PATH | --checkpoint_dir DIR)
//                 [--store_dir DIR]   serve frozen features from an mmap
//                                     embedding store (export-store output;
//                                     requires --model)
//                 [--port N]          TCP on 127.0.0.1:N (0 = ephemeral)
//                 [--stdin]           serve stdin/stdout instead of TCP
//                 [--max_batch N]     micro-batch size cap          (default 8)
//                 [--max_wait_us N]   coalescing wait               (default 500)
//                 [--max_queue N]     bounded queue depth           (default 64)
//                 [--workers N]       batch worker threads          (default 1)
//                 [--io_threads N]    epoll event loops             (default 1)
//                 [--max_conns N]     connection cap                (default 4096)
//                 [--admission_watermark N]  queue depth beyond which new
//                                     disambiguate requests get a structured
//                                     "overloaded" reply (default: max_queue)
//                 [--max_line_bytes N]   request line cap     (default 1 MiB)
//                 [--write_buf_bytes N]  unread-reply cap per connection;
//                                     slower readers are disconnected
//                                     (default 4 MiB)
//                 [--idle_timeout_ms N]  disconnect connections idle (no
//                                     bytes, nothing in flight) this long;
//                                     0 disables the reaper (default 0)
//                 [--cache N]         candidate cache capacity      (default 4096)
//                 [--resident_budget_mb M]  hot-set residency budget for the
//                                     mapped store, in MiB (fractional ok).
//                                     The popularity clock keeps the hottest
//                                     shards advised resident and
//                                     MADV_DONTNEEDs the cold tail; replies
//                                     stay bit-identical. 0 = unmanaged
//                                     mmap (default 0)
//                 [--resident_sweep_ms N]  residency clock-sweep cadence
//                                     (default 1000)
//                 [--compact_chain_depth N]  auto-compact the store's delta
//                                     chain whenever an adopted generation
//                                     is at least N deltas deep (store
//                                     deployments; 0 = operator-triggered
//                                     compaction only, default 0)
//                 [--char_fallback]   route unknown tokens through the
//                                     vocabulary's single-edit typo fallback
//                                     so typo'd words recover the clean
//                                     embedding instead of [UNK]; clean text
//                                     encodes bit-identically either way
//                 [--ablation A]      config preset when no .meta sidecar
//                 [--backend B]       inference backend: ref | simd | simd_q8
//                                     (default ref; simd is bit-identical to
//                                     ref, simd_q8 serves block-int8 weights)
//                 [--no_trace]        disable per-stage trace spans
//
// Protocol: newline-delimited JSON; ops disambiguate / disambiguate_text
// (raw text: sentence-split and mention-extracted server-side, mentions
// carry document-level spans plus a sentence index) / health / stats /
// reload / add_entity (loopback-only live index mutation: induces an
// embedding for a never-trained entity and publishes a chained store
// generation, --store_dir deployments only).
// SIGHUP hot-reloads the newest valid checkpoint (checkpoint_dir
// deployments) or the newest store generation (--store_dir deployments);
// corrupt candidates are skipped, and a failed reload keeps serving the
// previous weights/generation.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "serve/server.h"

using namespace bootleg;  // NOLINT

namespace {

volatile std::sig_atomic_t g_reload_requested = 0;
volatile std::sig_atomic_t g_shutdown_requested = 0;

void OnSighup(int) { g_reload_requested = 1; }
void OnTerm(int) { g_shutdown_requested = 1; }

/// Same minimal --flag parser as bootleg_cli, minus the subcommand slot.
/// Accepts both `--flag value` and `--flag=value`.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      std::string key = arg.substr(2);
      const size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = std::string(argv[++i]);
      } else {
        values_[key] = std::string("1");
      }
    }
  }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  // Spans feed the stats op's per-stage breakdown; --no_trace turns the
  // clock reads off (span scopes then cost one atomic load + branch).
  obs::Trace::Enable(!flags.Has("no_trace"));
  const std::string data = flags.Get("data");
  if (data.empty()) {
    std::fprintf(stderr,
                 "usage: bootleg_serve --data DIR (--model PATH | "
                 "--checkpoint_dir DIR) [--port N | --stdin]\n");
    return 2;
  }

  serve::EngineOptions engine_options;
  engine_options.data_dir = data;
  engine_options.model_path = flags.Get("model");
  engine_options.checkpoint_dir = flags.Get("checkpoint_dir");
  engine_options.store_dir = flags.Get("store_dir");
  engine_options.ablation = flags.Get("ablation", "full");
  engine_options.backend = flags.Get("backend", "ref");
  engine_options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 4096));
  // Fractional MiB so budgets below 1 MiB (tiny drill/test stores) work.
  engine_options.resident_budget_bytes = static_cast<int64_t>(
      flags.GetDouble("resident_budget_mb", 0.0) * 1024.0 * 1024.0);
  engine_options.resident_sweep_ms = flags.GetInt("resident_sweep_ms", 1000);
  engine_options.compact_chain_depth = flags.GetInt("compact_chain_depth", 0);
  engine_options.char_fallback = flags.Has("char_fallback");

  auto engine_or = serve::InferenceEngine::Create(engine_options);
  if (!engine_or.ok()) {
    std::fprintf(stderr, "error: %s\n", engine_or.status().ToString().c_str());
    return 1;
  }
  serve::InferenceEngine& engine = *engine_or.value();
  std::fprintf(stderr, "serving model %s\n", engine.loaded_path().c_str());

  serve::BatcherOptions batcher_options;
  batcher_options.max_batch = static_cast<int>(flags.GetInt("max_batch", 8));
  batcher_options.max_wait_us = flags.GetInt("max_wait_us", 500);
  batcher_options.max_queue =
      static_cast<size_t>(flags.GetInt("max_queue", 64));
  batcher_options.workers = static_cast<int>(flags.GetInt("workers", 1));

  serve::ServerCounters counters;
  serve::LatencyHistogram latency;

  // One preallocated scratch per batch worker, reused across batches.
  std::vector<core::BootlegModel::InferenceScratch> scratch(
      static_cast<size_t>(batcher_options.workers < 1 ? 1
                                                      : batcher_options.workers));
  serve::MicroBatcher batcher(
      batcher_options,
      [&engine, &scratch](const std::vector<serve::BatchItem>& items,
                          int worker) {
        return engine.DisambiguateBatch(items,
                                        &scratch[static_cast<size_t>(worker)]);
      },
      [&engine] { return engine.Reload(); }, &counters);

  serve::ServerOptions server_options;
  server_options.io_threads = static_cast<int>(flags.GetInt("io_threads", 1));
  server_options.max_conns = static_cast<int>(flags.GetInt("max_conns", 4096));
  server_options.admission_watermark =
      static_cast<size_t>(flags.GetInt("admission_watermark", 0));
  server_options.max_line_bytes =
      static_cast<size_t>(flags.GetInt("max_line_bytes", 1 << 20));
  server_options.write_buf_bytes =
      static_cast<size_t>(flags.GetInt("write_buf_bytes", 4 << 20));
  server_options.idle_timeout_ms =
      static_cast<int>(flags.GetInt("idle_timeout_ms", 0));

  serve::Server server(&engine, &batcher, &counters, &latency, server_options);
  server.SetPollHook([&batcher] {
    if (g_reload_requested) {
      g_reload_requested = 0;
      batcher.RequestReload();
    }
  });

  // No SA_RESTART: SIGHUP must interrupt accept() so the poll hook runs.
  struct sigaction sa {};
  sa.sa_handler = OnSighup;
  sigaction(SIGHUP, &sa, nullptr);
  struct sigaction st {};
  st.sa_handler = OnTerm;
  sigaction(SIGINT, &st, nullptr);
  sigaction(SIGTERM, &st, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  if (flags.Has("stdin")) {
    server.RunStdio(std::cin, std::cout);
    batcher.Shutdown();  // graceful drain of anything still queued
    return 0;
  }

  const util::Status st_start =
      server.Start(static_cast<int>(flags.GetInt("port", 0)));
  if (!st_start.ok()) {
    std::fprintf(stderr, "error: %s\n", st_start.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "listening on 127.0.0.1:%d\n", server.port());

  // Park until SIGINT/SIGTERM; SIGHUP reloads via the poll hook.
  sigset_t empty;
  sigemptyset(&empty);
  while (!g_shutdown_requested) {
    sigsuspend(&empty);
    if (g_reload_requested) {
      g_reload_requested = 0;
      batcher.RequestReload();
    }
  }
  std::fprintf(stderr, "shutting down: draining in-flight requests\n");
  server.Stop();
  batcher.Shutdown();
  return 0;
}

// overload_drill — hostile-client load generator for the serving front end.
//
//   overload_drill --port N        target (127.0.0.1)
//                  [--conns N]     well-behaved pipelining clients (default 32)
//                  [--pipeline N]  in-flight window per client      (default 8)
//                  [--requests N]  requests per well-behaved client (default 100)
//                  [--deadline_ms N]  per-request budget; 0 = none  (default 0)
//                  [--slowloris N] clients dribbling newline-free bytes (default 0)
//                  [--deadreaders N]  clients that request replies but never
//                                  read them (default 0)
//                  [--bigblobs N]  clients sending one line far beyond the
//                                  server's cap (default 0)
//                  [--text STR]    request text (default "drill")
//
// Every well-behaved reply is classified by its structured "code"; hostile
// clients verify the server cuts them off instead of stalling or dying. The
// one-line summary is machine-parseable for check.sh:
//
//   drill ok=... overloaded=... deadline_exceeded=... transport_rejects=...
//         errors=... stalls=... slowloris_cut=... deadreader_cut=...
//         bigblob_cut=... p99_ok_us=...
//
// Exit 0 when no well-behaved client stalled and every hostile client was
// disconnected; 1 otherwise.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      std::string key = arg.substr(2);
      const size_t eq = key.find('=');
      if (eq != std::string::npos) {
        values_[key.substr(0, eq)] = key.substr(eq + 1);
        continue;
      }
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = std::string(argv[++i]);
      } else {
        values_[key] = std::string("1");
      }
    }
  }
  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void SetRecvTimeout(int fd, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<size_t>(w);
  }
  return true;
}

/// One reply line; "" on EOF, timeout, or error (caller distinguishes via
/// `timed_out`).
std::string ReadReplyLine(int fd, bool* timed_out) {
  std::string reply;
  char c;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n == 1) {
      if (c == '\n') return reply;
      reply.push_back(c);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) *timed_out = true;
    return "";
  }
}

struct Tally {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> overloaded{0};
  std::atomic<int64_t> deadline_exceeded{0};
  std::atomic<int64_t> transport_rejects{0};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> stalls{0};
  std::atomic<int64_t> disconnects{0};  // well-behaved clients cut mid-run
  std::atomic<int64_t> slowloris_cut{0};
  std::atomic<int64_t> deadreader_cut{0};
  std::atomic<int64_t> bigblob_cut{0};

  std::mutex lat_mu;
  std::vector<int64_t> ok_latency_us;
};

void Classify(const std::string& reply, int64_t latency_us, Tally* tally) {
  if (reply.find("\"ok\":true") != std::string::npos ||
      reply.find("\"ok\": true") != std::string::npos) {
    tally->ok.fetch_add(1);
    std::lock_guard<std::mutex> lock(tally->lat_mu);
    tally->ok_latency_us.push_back(latency_us);
    return;
  }
  if (reply.find("overloaded") != std::string::npos) {
    tally->overloaded.fetch_add(1);
    return;
  }
  if (reply.find("deadline_exceeded") != std::string::npos) {
    tally->deadline_exceeded.fetch_add(1);
    return;
  }
  if (reply.find("too_many_inflight") != std::string::npos ||
      reply.find("server_full") != std::string::npos ||
      reply.find("line_too_long") != std::string::npos) {
    tally->transport_rejects.fetch_add(1);
    return;
  }
  tally->errors.fetch_add(1);
}

/// Well-behaved client: `requests` pipelined disambiguate calls with a
/// window of `pipeline` in flight, classifying every reply.
void RunClient(int port, int requests, int pipeline, const std::string& line,
               Tally* tally) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) {
    tally->disconnects.fetch_add(1);
    return;
  }
  SetRecvTimeout(fd, 10000);
  std::deque<std::chrono::steady_clock::time_point> sent_at;
  int sent = 0, received = 0;
  bool dead = false;
  while (received < requests && !dead) {
    while (sent < requests && static_cast<int>(sent_at.size()) < pipeline) {
      if (!SendAll(fd, line)) {
        dead = true;
        break;
      }
      sent_at.push_back(std::chrono::steady_clock::now());
      ++sent;
    }
    if (sent_at.empty()) break;
    bool timed_out = false;
    const std::string reply = ReadReplyLine(fd, &timed_out);
    if (reply.empty() && timed_out) {
      tally->stalls.fetch_add(1);
      dead = true;
      break;
    }
    if (reply.empty()) {
      // Server closed on us (e.g. write-buffer cap): not a stall, but note
      // the lost connection.
      tally->disconnects.fetch_add(1);
      dead = true;
      break;
    }
    const auto now = std::chrono::steady_clock::now();
    const int64_t lat_us =
        std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                              sent_at.front())
            .count();
    sent_at.pop_front();
    ++received;
    Classify(reply, lat_us, tally);
  }
  ::close(fd);
}

/// Slowloris: dribbles newline-free bytes. Success = the server hangs up.
void RunSlowloris(int port, Tally* tally) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return;
  const std::string chunk(512, 'a');
  bool cut = false;
  // Enough dribble to blow any sane line cap; bounded so the drill ends.
  for (int i = 0; i < 4096; ++i) {
    if (!SendAll(fd, chunk)) {
      cut = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!cut) {
    // The cap may have produced an error reply + FIN without RST; a read
    // confirms the close.
    SetRecvTimeout(fd, 3000);
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) {
        cut = true;
        break;
      }
      if (n < 0) break;
    }
  }
  if (cut) tally->slowloris_cut.fetch_add(1);
  ::close(fd);
}

/// Dead reader: pipelines stats requests and never reads. Success = the
/// server disconnects once the reply buffer cap is hit.
void RunDeadReader(int port, Tally* tally) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return;
  const std::string line = "{\"op\":\"stats\"}\n";
  for (int i = 0; i < 100000; ++i) {
    if (!SendAll(fd, line)) {
      tally->deadreader_cut.fetch_add(1);
      break;
    }
    if ((i & 63) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ::close(fd);
}

/// Big blob: one request line far beyond any sane cap. Success = structured
/// cutoff (reply mentioning line_too_long, or a hangup mid-send).
void RunBigBlob(int port, Tally* tally) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) return;
  std::string blob(8u << 20, 'b');
  blob += '\n';
  const bool sent = SendAll(fd, blob);
  bool cut = !sent;
  if (sent) {
    SetRecvTimeout(fd, 5000);
    bool timed_out = false;
    const std::string reply = ReadReplyLine(fd, &timed_out);
    cut = reply.find("line_too_long") != std::string::npos;
  }
  if (cut) tally->bigblob_cut.fetch_add(1);
  ::close(fd);
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);
  const Flags flags(argc, argv);
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) {
    std::fprintf(stderr, "usage: overload_drill --port N [--conns N] ...\n");
    return 2;
  }
  const int conns = static_cast<int>(flags.GetInt("conns", 32));
  const int pipeline = static_cast<int>(flags.GetInt("pipeline", 8));
  const int requests = static_cast<int>(flags.GetInt("requests", 100));
  const int deadline_ms = static_cast<int>(flags.GetInt("deadline_ms", 0));
  const int slowloris = static_cast<int>(flags.GetInt("slowloris", 0));
  const int deadreaders = static_cast<int>(flags.GetInt("deadreaders", 0));
  const int bigblobs = static_cast<int>(flags.GetInt("bigblobs", 0));
  const std::string text = flags.Get("text", "drill");

  std::string line = "{\"op\":\"disambiguate\",\"text\":\"" + text + "\"";
  if (deadline_ms > 0) {
    line += ",\"deadline_ms\":" + std::to_string(deadline_ms);
  }
  line += "}\n";

  Tally tally;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(conns + slowloris + deadreaders +
                                      bigblobs));
  for (int i = 0; i < slowloris; ++i) {
    threads.emplace_back([&] { RunSlowloris(port, &tally); });
  }
  for (int i = 0; i < deadreaders; ++i) {
    threads.emplace_back([&] { RunDeadReader(port, &tally); });
  }
  for (int i = 0; i < bigblobs; ++i) {
    threads.emplace_back([&] { RunBigBlob(port, &tally); });
  }
  for (int i = 0; i < conns; ++i) {
    threads.emplace_back(
        [&] { RunClient(port, requests, pipeline, line, &tally); });
  }
  for (std::thread& t : threads) t.join();

  int64_t p99 = 0;
  {
    std::lock_guard<std::mutex> lock(tally.lat_mu);
    if (!tally.ok_latency_us.empty()) {
      std::sort(tally.ok_latency_us.begin(), tally.ok_latency_us.end());
      const size_t idx = std::min(
          tally.ok_latency_us.size() - 1,
          static_cast<size_t>(0.99 * static_cast<double>(
                                         tally.ok_latency_us.size())));
      p99 = tally.ok_latency_us[idx];
    }
  }

  const bool hostile_ok = tally.slowloris_cut.load() == slowloris &&
                          tally.deadreader_cut.load() == deadreaders &&
                          tally.bigblob_cut.load() == bigblobs;
  std::printf(
      "drill ok=%lld overloaded=%lld deadline_exceeded=%lld "
      "transport_rejects=%lld errors=%lld stalls=%lld disconnects=%lld "
      "slowloris_cut=%lld deadreader_cut=%lld bigblob_cut=%lld "
      "p99_ok_us=%lld\n",
      static_cast<long long>(tally.ok.load()),
      static_cast<long long>(tally.overloaded.load()),
      static_cast<long long>(tally.deadline_exceeded.load()),
      static_cast<long long>(tally.transport_rejects.load()),
      static_cast<long long>(tally.errors.load()),
      static_cast<long long>(tally.stalls.load()),
      static_cast<long long>(tally.disconnects.load()),
      static_cast<long long>(tally.slowloris_cut.load()),
      static_cast<long long>(tally.deadreader_cut.load()),
      static_cast<long long>(tally.bigblob_cut.load()),
      static_cast<long long>(p99));
  return (tally.stalls.load() == 0 && hostile_ok) ? 0 : 1;
}

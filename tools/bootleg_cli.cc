// bootleg_cli — end-to-end command-line driver for the library:
//
//   bootleg_cli gen     --out DIR [--scale micro|main] [--seed N] [--pages N]
//   bootleg_cli inspect --data DIR [--n 10]
//   bootleg_cli train   --data DIR --model PATH [--epochs N]
//                       [--ablation full|ent|type|kg] [--no-weak-labels]
//                       [--checkpoint_dir DIR [--checkpoint_every STEPS]
//                        [--retain K] [--resume] [--max_steps N]
//                        [--fault_fail_after BYTES]] [--trace_out FILE]
//   bootleg_cli eval    --data DIR --model PATH [--split dev|test]
//                       [--noise_rates 0.05,0.1] [--noise_seed N]
//                       [--overshadow_prior P] [--char_fallback]
//   bootleg_cli predict --data DIR --model PATH --text "..."
//   bootleg_cli export-store --data DIR --model PATH --out DIR
//                       [--quant float32|int8] [--shards N]
//   bootleg_cli store   --dir DIR [--verify]
//   bootleg_cli induce  --data DIR --model PATH --store DIR --title TITLE
//                       [--coarse NAME] [--gender m|f|n] [--types a,b]
//                       [--relations rel=Title,...] [--aliases a[=p],...]
//   bootleg_cli compact --dir DIR
//
// `gen` writes a self-contained dataset directory (kb.bin, candidates.bin,
// vocab.bin, corpus.bin); `train`/`eval`/`predict` work purely from those
// files — no regeneration needed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>

#include "core/model.h"
#include "core/model_loader.h"
#include "core/trainer.h"
#include "index/live_index.h"
#include "data/corpus_io.h"
#include "data/example.h"
#include "data/generator.h"
#include "data/mention_extractor.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "eval/evaluator.h"
#include "obs/trace.h"
#include "robust/robust_eval.h"
#include "store/embedding_store.h"
#include "util/io.h"
#include "util/string_util.h"

using namespace bootleg;  // NOLINT

namespace {

/// Minimal --flag value parser; flags without '--' are positional.
/// Accepts both `--flag value` and `--flag=value`.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        std::string key = arg.substr(2);
        const size_t eq = key.find('=');
        if (eq != std::string::npos) {
          values_[key.substr(0, eq)] = key.substr(eq + 1);
          continue;
        }
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "1";  // boolean flag
        }
      }
    }
  }

  std::string Get(const std::string& key, const std::string& def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::stoll(it->second);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

struct Dataset {
  kb::KnowledgeBase kb;
  kb::CandidateMap candidates;
  text::Vocabulary vocab;
  data::Corpus corpus;
};

bool LoadDataset(const std::string& dir, Dataset* ds) {
  const util::Status s1 = ds->kb.Load(dir + "/kb.bin");
  const util::Status s2 = ds->candidates.Load(dir + "/candidates.bin");
  const util::Status s3 = ds->vocab.Load(dir + "/vocab.bin");
  const util::Status s4 = data::LoadCorpus(dir + "/corpus.bin", &ds->corpus);
  for (const util::Status& s : {s1, s2, s3, s4}) {
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return false;
    }
  }
  return true;
}

core::BootlegConfig ConfigFor(const std::string& ablation) {
  core::BootlegConfig config;
  config.encoder.max_len = 32;
  if (ablation == "ent") return core::BootlegConfig::EntOnly(config);
  if (ablation == "type") return core::BootlegConfig::TypeOnly(config);
  if (ablation == "kg") return core::BootlegConfig::KgOnly(config);
  BOOTLEG_CHECK_MSG(ablation == "full", "unknown --ablation: " + ablation);
  return config;
}

int CmdGen(const Flags& flags) {
  const std::string out = flags.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "gen requires --out DIR\n");
    return 2;
  }
  data::SynthConfig config = flags.Get("scale", "micro") == "main"
                                 ? data::SynthConfig()
                                 : data::SynthConfig::MicroScale();
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", static_cast<int64_t>(config.seed)));
  config.num_pages = flags.GetInt("pages", config.num_pages);

  std::filesystem::create_directories(out);
  const data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  const data::Corpus corpus = generator.Generate();

  util::Status status = world.kb.Save(out + "/kb.bin");
  if (status.ok()) status = world.candidates.Save(out + "/candidates.bin");
  if (status.ok()) status = world.vocab.Save(out + "/vocab.bin");
  if (status.ok()) status = data::SaveCorpus(corpus, out + "/corpus.bin");
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %lld entities, %lld types, %lld relations, "
              "%lld/%lld/%lld train/dev/test sentences\n",
              out.c_str(), static_cast<long long>(world.kb.num_entities()),
              static_cast<long long>(world.kb.num_types()),
              static_cast<long long>(world.kb.num_relations()),
              static_cast<long long>(corpus.train.size()),
              static_cast<long long>(corpus.dev.size()),
              static_cast<long long>(corpus.test.size()));
  return 0;
}

int CmdInspect(const Flags& flags) {
  Dataset ds;
  if (!LoadDataset(flags.Get("data"), &ds)) return 1;
  const int64_t n = flags.GetInt("n", 10);
  std::printf("train sentences: %zu (showing %lld)\n", ds.corpus.train.size(),
              static_cast<long long>(n));
  for (int64_t i = 0; i < n && i < static_cast<int64_t>(ds.corpus.train.size());
       ++i) {
    std::printf("  %s\n",
                data::RenderSentence(ds.corpus.train[static_cast<size_t>(i)],
                                     &ds.kb)
                    .c_str());
  }
  return 0;
}

int CmdTrain(const Flags& flags) {
  Dataset ds;
  if (!LoadDataset(flags.Get("data"), &ds)) return 1;
  const std::string model_path = flags.Get("model");
  if (model_path.empty()) {
    std::fprintf(stderr, "train requires --model PATH\n");
    return 2;
  }
  const std::string trace_out = flags.Get("trace_out");
  if (!trace_out.empty()) obs::Trace::Enable(true);
  if (!flags.Has("no-weak-labels")) {
    const data::WeakLabelStats wl =
        data::ApplyWeakLabeling(ds.kb, &ds.corpus.train);
    std::printf("weak labeling: %.2fx labels\n", wl.Multiplier());
  }
  const data::EntityCounts counts =
      data::EntityCounts::FromTraining(ds.corpus.train);
  const std::string ablation = flags.Get("ablation", "full");
  core::BootlegModel model(&ds.kb, ds.vocab.size(), ConfigFor(ablation),
                           static_cast<uint64_t>(flags.GetInt("seed", 7)));
  model.SetEntityCounts(&counts);

  data::ExampleBuilder builder(&ds.candidates, &ds.vocab);
  const auto examples = builder.BuildAll(ds.corpus.train, {});
  core::TrainOptions options;
  options.epochs = flags.GetInt("epochs", 5);
  options.num_threads = static_cast<int>(flags.GetInt("threads", 0));
  options.verbose = true;
  options.max_steps = flags.GetInt("max_steps", 0);
  options.checkpoint_dir = flags.Get("checkpoint_dir");
  options.checkpoint_every_steps = flags.GetInt("checkpoint_every", 0);
  options.checkpoint_retain = flags.GetInt("retain", 3);
  options.resume = flags.Has("resume");
  if (flags.Has("fault_fail_after")) {
    // Test hook: simulate a crash by failing (and truncating) every write
    // past a total byte budget. Torn temp files are left on disk exactly as
    // a real kill would leave them.
    util::FaultInjector::Plan plan;
    plan.fail_after_bytes = flags.GetInt("fault_fail_after", -1);
    util::FaultInjector::Arm(plan);
  }
  core::Trainable<core::BootlegModel> trainable(&model);
  const core::TrainStats stats = core::Train(&trainable, examples, options);
  if (stats.resumed_from_step >= 0) {
    std::printf("resumed from checkpoint step %lld\n",
                static_cast<long long>(stats.resumed_from_step));
  }
  std::printf("trained %lld sentences in %.1fs (%d threads, %lld steps)\n",
              static_cast<long long>(stats.sentences_seen), stats.seconds,
              stats.threads, static_cast<long long>(stats.steps));
  if (util::FaultInjector::crash_simulated()) {
    std::fprintf(stderr,
                 "simulated crash: injected I/O fault fired; exiting without "
                 "final save\n");
    return 1;
  }

  util::Status status = model.store().Save(model_path);
  if (status.ok()) {
    status = util::WriteTextFile(model_path + ".meta", ablation + "\n");
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %s\n", model_path.c_str());
  if (!trace_out.empty()) {
    status = obs::Trace::WriteJsonl(trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-stage trace to %s\n", trace_out.c_str());
  }
  return 0;
}

/// Loads the model (construction config from the .meta sidecar).
std::unique_ptr<core::BootlegModel> LoadModel(const Dataset& ds,
                                              const std::string& path) {
  std::string ablation = "full";
  auto meta = util::ReadTextFile(path + ".meta");
  if (meta.ok()) {
    const auto parts = util::Split(meta.value(), "\n");
    if (!parts.empty()) ablation = parts[0];
  }
  auto model = std::make_unique<core::BootlegModel>(
      &ds.kb, ds.vocab.size(), ConfigFor(ablation), /*seed=*/7);
  const util::Status status =
      core::LoadSnapshotOrInvalidate(path, &model->store());
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return nullptr;
  }
  return model;
}

int CmdEval(const Flags& flags) {
  Dataset ds;
  if (!LoadDataset(flags.Get("data"), &ds)) return 1;
  auto model = LoadModel(ds, flags.Get("model"));
  if (model == nullptr) return 1;
  // Counts mirror training: weak labels included.
  data::ApplyWeakLabeling(ds.kb, &ds.corpus.train);
  const data::EntityCounts counts =
      data::EntityCounts::FromTraining(ds.corpus.train);
  model->SetEntityCounts(&counts);

  const auto& split =
      flags.Get("split", "dev") == "test" ? ds.corpus.test : ds.corpus.dev;
  if (flags.Has("char_fallback")) ds.vocab.BuildTypoIndex();
  data::ExampleBuilder builder(&ds.candidates, &ds.vocab);
  data::ExampleOptions ex_options;
  ex_options.char_fallback = flags.Has("char_fallback");

  // Robustness slices: --noise_rates 0.05,0.1 adds one perturbed evaluation
  // per rate; the overshadowed slice and prior-follow diagnostic are always
  // reported (they reuse the clean run's records).
  std::vector<double> rates;
  for (const std::string& r : util::Split(flags.Get("noise_rates"), ",")) {
    if (!r.empty()) rates.push_back(std::atof(r.c_str()));
  }
  robust::OvershadowOptions ov_options;
  ov_options.dominance =
      static_cast<float>(std::atof(
          flags.Get("overshadow_prior", "0.8").c_str()));
  const robust::OvershadowedIndex overshadowed =
      robust::OvershadowedIndex::Build(ds.candidates, ov_options);
  const robust::RobustReport report = robust::RunRobustEvaluation(
      model.get(), split, builder, ex_options, counts, overshadowed, rates,
      static_cast<uint64_t>(flags.GetInt("noise_seed", 1234)),
      static_cast<int>(flags.GetInt("threads", 0)));

  std::printf("%-12s %8s %8s\n", "bucket", "F1", "n");
  const eval::Prf overall = report.clean.Overall();
  std::printf("%-12s %8.1f %8lld\n", "all", overall.f1(),
              static_cast<long long>(overall.total));
  for (data::PopularityBucket b :
       {data::PopularityBucket::kHead, data::PopularityBucket::kTorso,
        data::PopularityBucket::kTail, data::PopularityBucket::kUnseen}) {
    const eval::Prf prf = report.clean.ByBucket(b);
    std::printf("%-12s %8.1f %8lld\n", data::PopularityBucketName(b), prf.f1(),
                static_cast<long long>(prf.total));
  }
  const eval::Prf ov = robust::OvershadowedPrf(report.clean);
  std::printf("%-12s %8.1f %8lld\n", "overshadowed", ov.f1(),
              static_cast<long long>(ov.total));
  for (const robust::NoisySlice& slice : report.noisy) {
    char label[32];
    std::snprintf(label, sizeof(label), "noisy@%.2f", slice.rate);
    const eval::Prf prf = slice.results.Overall();
    std::printf("%-12s %8.1f %8lld\n", label, prf.f1(),
                static_cast<long long>(prf.total));
  }
  // Prior-vs-context diagnostic: how often the model just follows the Γ
  // prior argmax — overall vs. on the overshadowed slice, where following
  // the prior is by construction the wrong strategy.
  std::printf("prior-follow: all %.1f%%  overshadowed %.1f%%\n",
              robust::PriorFollowRate(report.clean),
              robust::PriorFollowRate(
                  report.clean,
                  [](const eval::PredictionRecord& r) { return r.overshadowed; }));
  return 0;
}

int CmdPredict(const Flags& flags) {
  Dataset ds;
  if (!LoadDataset(flags.Get("data"), &ds)) return 1;
  auto model = LoadModel(ds, flags.Get("model"));
  if (model == nullptr) return 1;
  const std::string text = flags.Get("text");
  if (text.empty()) {
    std::fprintf(stderr, "predict requires --text \"...\"\n");
    return 2;
  }
  const data::MentionExtractor extractor(&ds.candidates);
  const data::SentenceExample example = extractor.BuildExample(ds.vocab, text);
  if (example.mentions.empty()) {
    std::printf("no mentions found\n");
    return 0;
  }
  const auto preds = model->Predict(example);
  for (size_t mi = 0; mi < example.mentions.size(); ++mi) {
    const data::MentionExample& m = example.mentions[mi];
    std::printf("  mention @%lld", static_cast<long long>(m.span_start));
    if (preds[mi] >= 0) {
      const kb::EntityId e = m.candidates[static_cast<size_t>(preds[mi])];
      std::printf(" -> %s (of %zu candidates)\n", ds.kb.entity(e).title.c_str(),
                  m.candidates.size());
    } else {
      std::printf(" -> ? (no candidates)\n");
    }
  }
  return 0;
}

/// Converts a trained snapshot into a sharded embedding-store directory:
/// the frozen per-entity feature table the serving gather path reads
/// ("static") plus the raw entity embedding ("entity_emb", for inspection
/// and downstream reuse), float32 or per-row symmetric int8.
int CmdExportStore(const Flags& flags) {
  Dataset ds;
  if (!LoadDataset(flags.Get("data"), &ds)) return 1;
  auto model = LoadModel(ds, flags.Get("model"));
  if (model == nullptr) return 1;
  const std::string out = flags.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "export-store requires --out DIR\n");
    return 2;
  }
  store::WriteOptions options;
  const std::string quant = flags.Get("quant", "float32");
  if (quant == "int8") {
    options.dtype = store::Dtype::kInt8;
  } else if (quant != "float32") {
    std::fprintf(stderr, "unknown --quant %s (float32|int8)\n", quant.c_str());
    return 2;
  }
  options.shards = flags.GetInt("shards", 4);

  if (model->config().use_title_feature) {
    std::vector<int64_t> ids;
    ids.reserve(static_cast<size_t>(ds.kb.num_entities()));
    for (kb::EntityId e = 0; e < ds.kb.num_entities(); ++e) {
      ids.push_back(ds.vocab.Id(ds.kb.entity(e).title));
    }
    model->SetTitleTokenIds(std::move(ids));
  }
  model->PrepareFrozenInference();
  const tensor::Tensor& frozen = model->frozen_static();

  std::vector<store::TableSource> tables;
  tables.push_back({"static", frozen.data(), frozen.size(0), frozen.size(1)});
  if (const nn::Embedding* emb = model->store().GetEmbedding("entity_emb")) {
    tables.push_back(
        {"entity_emb", emb->table().data(), emb->rows(), emb->cols()});
  }
  const util::Status status = store::WriteStore(out, tables, options);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  auto opened = store::EmbeddingStore::Open(out);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: re-open after export failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::printf("exported %zu tables (%s, %lld shards each) to %s\n",
              tables.size(), store::DtypeName(options.dtype),
              static_cast<long long>(options.shards), out.c_str());
  for (const store::TableInfo& t : opened.value()->tables()) {
    std::printf("  %-12s %lld x %lld  max_abs_err=%.6f\n", t.name.c_str(),
                static_cast<long long>(t.rows), static_cast<long long>(t.cols),
                t.max_abs_error);
  }
  return 0;
}

/// Inspects (and with --verify, checksum-walks) a store directory.
int CmdStore(const Flags& flags) {
  const std::string dir = flags.Get("dir");
  if (dir.empty()) {
    std::fprintf(stderr, "store requires --dir DIR\n");
    return 2;
  }
  int64_t generation = -1;
  auto opened = store::OpenNewestGeneration(dir, &generation);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  const store::EmbeddingStore& es = *opened.value();
  std::printf("store %s (generation %lld, %lld shards, %llu mapped bytes)\n",
              es.dir().c_str(), static_cast<long long>(generation),
              static_cast<long long>(es.num_shards()),
              static_cast<unsigned long long>(es.mapped_bytes()));
  for (const store::TableInfo& t : es.tables()) {
    std::printf("  table %-12s %lld x %lld %s", t.name.c_str(),
                static_cast<long long>(t.rows), static_cast<long long>(t.cols),
                store::DtypeName(t.dtype));
    if (t.dtype == store::Dtype::kInt8) {
      std::printf("  max_abs_err=%.6f mean_abs_err=%.6f", t.max_abs_error,
                  t.mean_abs_error);
    }
    std::printf("\n");
    for (const store::ShardInfo& s : t.shards) {
      std::printf("    %-28s rows [%lld, %lld)  %llu bytes  crc %08x\n",
                  s.file.c_str(), static_cast<long long>(s.row_begin),
                  static_cast<long long>(s.row_begin + s.row_count),
                  static_cast<unsigned long long>(s.file_bytes), s.payload_crc);
    }
  }
  if (flags.Has("verify")) {
    const util::Status status = es.Verify();
    if (!status.ok()) {
      std::fprintf(stderr, "verify FAILED: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("verify OK: every shard payload matches its checksum\n");
  }
  return 0;
}

/// Offline live-index mutation: induces an embedding for a never-trained
/// entity and publishes it as a chained delta generation — the same path the
/// server's add_entity op runs, minus the in-process adoption.
int CmdInduce(const Flags& flags) {
  const auto t_start = std::chrono::steady_clock::now();
  Dataset ds;
  if (!LoadDataset(flags.Get("data"), &ds)) return 1;
  auto model = LoadModel(ds, flags.Get("model"));
  if (model == nullptr) return 1;
  const std::string dir = flags.Get("store");
  const std::string title = flags.Get("title");
  if (dir.empty() || title.empty()) {
    std::fprintf(stderr, "induce requires --store DIR and --title TITLE\n");
    return 2;
  }

  int64_t generation = -1;
  auto opened = store::OpenNewestGeneration(dir, &generation);
  if (!opened.ok()) {
    std::fprintf(stderr, "error: %s\n", opened.status().ToString().c_str());
    return 1;
  }
  const store::EmbeddingStore& es = *opened.value();

  // Bring the base KB up to the chain tip so names resolve against (and the
  // new delta stacks onto) everything already added live.
  index::ApplyStats applied;
  util::Status status =
      index::ApplyDeltas(es, &ds.kb, &ds.candidates, nullptr, &applied);
  if (!status.ok()) {
    std::fprintf(stderr, "error: replaying delta chain: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  index::DeltaEntity spec;
  spec.title = title;
  const std::string coarse = flags.Get("coarse", "misc");
  const auto coarse_id = kb::CoarseTypeFromName(coarse);
  if (!coarse_id.has_value()) {
    std::fprintf(stderr, "unknown --coarse \"%s\"\n", coarse.c_str());
    return 2;
  }
  spec.coarse = *coarse_id;
  const std::string gender = flags.Get("gender", "n");
  if (gender != "m" && gender != "f" && gender != "n") {
    std::fprintf(stderr, "--gender must be m, f or n\n");
    return 2;
  }
  spec.gender = gender[0];
  for (const std::string& name : util::Split(flags.Get("types"), ",")) {
    const kb::TypeId id = ds.kb.FindTypeByName(name);
    if (id == kb::kInvalidId) {
      std::fprintf(stderr, "unknown type \"%s\"\n", name.c_str());
      return 2;
    }
    spec.types.push_back(id);
  }
  // --relations rel=ObjectTitle,rel2=OtherTitle
  for (const std::string& pair : util::Split(flags.Get("relations"), ",")) {
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "--relations entries are rel=ObjectTitle\n");
      return 2;
    }
    const std::string rel_name = pair.substr(0, eq);
    const std::string obj_title = pair.substr(eq + 1);
    const kb::RelationId rel = ds.kb.FindRelationByName(rel_name);
    if (rel == kb::kInvalidId) {
      std::fprintf(stderr, "unknown relation \"%s\"\n", rel_name.c_str());
      return 2;
    }
    const kb::EntityId obj = ds.kb.FindByTitle(obj_title);
    if (obj == kb::kInvalidId) {
      std::fprintf(stderr, "unknown object entity \"%s\"\n", obj_title.c_str());
      return 2;
    }
    spec.triples.push_back({rel, obj});
  }
  // --aliases "alias=0.5,other alias=0.3" (prior optional, default 0.5)
  for (const std::string& pair : util::Split(flags.Get("aliases"), ",")) {
    index::DeltaAlias alias;
    const size_t eq = pair.rfind('=');
    if (eq == std::string::npos) {
      alias.alias = pair;
    } else {
      alias.alias = pair.substr(0, eq);
      alias.prior = static_cast<float>(std::atof(pair.c_str() + eq + 1));
    }
    spec.aliases.push_back(std::move(alias));
  }
  if (spec.aliases.empty()) spec.aliases.push_back({spec.title, 0.5f});
  spec.title_token_id = ds.vocab.Id(spec.title);

  status = index::ValidateDeltaEntity(ds.kb, ds.candidates,
                                      ds.kb.num_entities(), spec);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  auto view = es.View("static");
  if (!view.ok()) {
    std::fprintf(stderr, "error: %s\n", view.status().ToString().c_str());
    return 1;
  }
  std::vector<float> row;
  status = index::InduceRow(*model, ds.kb, *view.value(), spec, &row);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }

  index::IndexDelta delta;
  delta.base_entities = ds.kb.num_entities();
  delta.entities.push_back(std::move(spec));
  index::PublishResult published;
  status = index::PublishDelta(dir, es, generation, delta, row.data(),
                               &published);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  const double ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          std::chrono::steady_clock::now() - t_start)
          .count();
  std::printf(
      "induced \"%s\" -> generation %lld (%s) in %.1f ms; a serving "
      "process picks it up on its next reload\n",
      title.c_str(), static_cast<long long>(published.generation),
      published.dir.c_str(), ms);
  return 0;
}

/// Folds the newest delta chain into one flat generation.
int CmdCompact(const Flags& flags) {
  const std::string dir = flags.Get("dir");
  if (dir.empty()) {
    std::fprintf(stderr, "compact requires --dir DIR\n");
    return 2;
  }
  index::CompactResult result;
  const util::Status status = index::Compact(dir, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  if (result.already_flat) {
    std::printf("generation %lld is already flat; nothing to do\n",
                static_cast<long long>(result.source_generation));
    return 0;
  }
  std::printf(
      "compacted chain at generation %lld into flat generation %lld (%s, "
      "%lld files)\n",
      static_cast<long long>(result.source_generation),
      static_cast<long long>(result.generation), result.dir.c_str(),
      static_cast<long long>(result.files_copied));
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bootleg_cli "
      "<gen|inspect|train|eval|predict|export-store|store|induce|compact> "
      "[flags]\n"
      "  gen     --out DIR [--scale micro|main] [--seed N] [--pages N]\n"
      "  inspect --data DIR [--n N]\n"
      "  train   --data DIR --model PATH [--epochs N] [--threads N]\n"
      "          [--ablation full|ent|type|kg] [--no-weak-labels]\n"
      "          [--checkpoint_dir DIR] [--checkpoint_every STEPS]\n"
      "          [--retain K] [--resume] [--max_steps N]\n"
      "          [--fault_fail_after BYTES] [--trace_out FILE]\n"
      "  eval    --data DIR --model PATH [--split dev|test] [--threads N]\n"
      "  predict --data DIR --model PATH --text \"...\"\n"
      "  export-store --data DIR --model PATH --out DIR\n"
      "          [--quant float32|int8] [--shards N]\n"
      "  store   --dir DIR [--verify]\n"
      "  induce  --data DIR --model PATH --store DIR --title TITLE\n"
      "          [--coarse NAME] [--gender m|f|n] [--types a,b,...]\n"
      "          [--relations rel=Title,...] [--aliases alias[=prior],...]\n"
      "  compact --dir DIR\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Flags flags(argc, argv);
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "inspect") return CmdInspect(flags);
  if (cmd == "train") return CmdTrain(flags);
  if (cmd == "eval") return CmdEval(flags);
  if (cmd == "predict") return CmdPredict(flags);
  if (cmd == "export-store") return CmdExportStore(flags);
  if (cmd == "store") return CmdStore(flags);
  if (cmd == "induce") return CmdInduce(flags);
  if (cmd == "compact") return CmdCompact(flags);
  return Usage();
}

#!/usr/bin/env bash
# Builds (Release) and runs the micro-kernel benchmark suite, writing
# google-benchmark JSON to BENCH_kernels.json at the repo root.
#
# Usage: tools/run_bench.sh [build_dir] [extra benchmark args...]
#   BOOTLEG_THREADS controls pool size for the kernel benchmarks
#   (BM_TrainEpoch / BM_ParallelEval sweep thread counts themselves).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"${REPO_ROOT}/build"}"
shift || true

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${BUILD_DIR}" --target micro_kernels -j >/dev/null

OUT="${REPO_ROOT}/BENCH_kernels.json"
"${BUILD_DIR}/bench/micro_kernels" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${OUT}"

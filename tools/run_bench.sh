#!/usr/bin/env bash
# Builds (Release) and runs the benchmark suites:
#   1. micro-kernel suite  -> BENCH_kernels.json (google-benchmark JSON)
#   2. serving suite       -> BENCH_serve.json   (closed-loop clients at fixed
#      concurrency against the micro-batching engine, plus net_c16..net_c1024
#      rows that drive real TCP connections through the epoll front end;
#      throughput + p50/p95/p99. The net rows are the connection-scaling
#      check: net_c256 throughput is expected to hold at or above net_c16.)
#   3. observability suite -> BENCH_obs.json     (disabled/enabled span cost,
#      disabled-span overhead on MatMul/128, and a traced train+serve
#      workload's per-stage wall-time breakdown)
#   4. embedding store     -> BENCH_store.json   (gather ns/row for heap vs
#      mmap-float vs mmap-int8, resident-memory reduction, end-to-end
#      serve-path overhead of store-backed engines, the residency scenario:
#      chunk-gather p50/p99 + resident bytes for a budgeted popularity-clock
#      store vs unmanaged mmap under Zipf traffic, and the store_delta
#      scenario: AddEntityLive publish latency, time_to_first_correct_serve
#      for a never-trained entity, delta-chain gather cost, and Compact)
#   5. robustness suite    -> BENCH_robust.json  (F1 cliff vs. deterministic
#      noise rate on the dev split, overshadowed-slice F1, prior-follow
#      diagnostic, and the char-fallback encoder-hardening delta)
#
# Usage: tools/run_bench.sh [build_dir] [extra benchmark args...]
#   BOOTLEG_THREADS controls pool size for the kernel benchmarks
#   (BM_TrainEpoch / BM_ParallelEval sweep thread counts themselves).
#   SERVE_BENCH_REQUESTS overrides per-client request count (default 500).
#
# The committed BENCH_*.json files are optimized-build numbers. A fresh build
# dir is configured Release; an existing one is used as-is but its cached
# build type must be Release or RelWithDebInfo — the script refuses to
# overwrite the bench JSON from a debug (or sanitizer) build rather than
# silently committing numbers an optimized build would contradict.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"${REPO_ROOT}/build"}"
shift || true

if [[ -f "${BUILD_DIR}/CMakeCache.txt" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" >/dev/null
else
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "${BUILD_DIR}/CMakeCache.txt")"
SANITIZE="$(sed -n 's/^BOOTLEG_SANITIZE:[^=]*=//p' "${BUILD_DIR}/CMakeCache.txt")"
case "${BUILD_TYPE}" in
  # An empty cached type gets the top-level CMakeLists' Release default.
  Release|RelWithDebInfo|"") ;;
  *)
    echo "refusing to run benchmarks: ${BUILD_DIR} is a '${BUILD_TYPE:-<unset>}'" \
         "build (need Release or RelWithDebInfo); not overwriting BENCH_*.json" >&2
    exit 1
    ;;
esac
if [[ -n "${SANITIZE}" && "${SANITIZE}" != "OFF" ]]; then
  echo "refusing to run benchmarks: ${BUILD_DIR} is sanitized" \
       "(BOOTLEG_SANITIZE=${SANITIZE}); not overwriting BENCH_*.json" >&2
  exit 1
fi

cmake --build "${BUILD_DIR}" --target micro_kernels serve_bench obs_bench store_bench robust_bench -j >/dev/null

OUT="${REPO_ROOT}/BENCH_kernels.json"
"${BUILD_DIR}/bench/micro_kernels" \
  --benchmark_out="${OUT}" \
  --benchmark_out_format=json \
  "$@"

echo "wrote ${OUT}"

SERVE_OUT="${REPO_ROOT}/BENCH_serve.json"
"${BUILD_DIR}/bench/serve_bench" \
  --out "${SERVE_OUT}" \
  --requests "${SERVE_BENCH_REQUESTS:-500}"

OBS_OUT="${REPO_ROOT}/BENCH_obs.json"
"${BUILD_DIR}/bench/obs_bench" --out "${OBS_OUT}"
echo "wrote ${OBS_OUT}"

STORE_OUT="${REPO_ROOT}/BENCH_store.json"
"${BUILD_DIR}/bench/store_bench" --out "${STORE_OUT}"
echo "wrote ${STORE_OUT}"

ROBUST_OUT="${REPO_ROOT}/BENCH_robust.json"
"${BUILD_DIR}/bench/robust_bench" --out "${ROBUST_OUT}"
echo "wrote ${ROBUST_OUT}"

// Figure 3: error (100 - F1) across all / torso / tail / unseen entities as
// entity embeddings are compressed: only the top-k% of entities by training
// popularity keep their learned embedding, all others share one unseen
// entity's embedding. The paper finds top-5% costs only 0.8 F1 overall and
// *improves* the tail by ~2 F1.
#include <cstdio>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  auto bootleg = harness::TrainBootleg(
      &env, {"bootleg_full", harness::DefaultBootlegConfig(),
             harness::DefaultTrainOptions(), 7});

  const double kKeepPercent[] = {100.0, 50.0, 20.0, 10.0, 5.0, 1.0, 0.1};

  std::printf("\n=== Figure 3: error vs entity-embedding compression ===\n");
  std::printf("%-8s %-12s %8s %8s %8s %8s\n", "keep %", "compression",
              "all", "torso", "tail", "unseen");
  for (double keep : kKeepPercent) {
    if (keep < 100.0) {
      bootleg->CompressEntityEmbeddings(keep / 100.0, env.counts);
    }
    harness::BucketResult r =
        harness::EvaluateBuckets(bootleg.get(), env, env.corpus.dev);
    std::printf("%-8.1f %-12.1f %8.1f %8.1f %8.1f %8.1f\n", keep, 100.0 - keep,
                100.0 - r.all.f1(), 100.0 - r.torso.f1(), 100.0 - r.tail.f1(),
                100.0 - r.unseen.f1());
    if (keep < 100.0) bootleg->RestoreEntityEmbeddings();
  }
  std::printf(
      "\nShape check (paper): error stays near-flat down to keep=5%%; only "
      "at 1%% and\nbelow does overall error climb, and tail error can "
      "*decrease* under compression.\n");
  return 0;
}

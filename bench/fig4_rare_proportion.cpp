// Figure 4: error rate as a function of the proportion of rare (tail +
// unseen) entities among all entities carrying a given type (right panel) or
// relation (left panel), for Bootleg, NED-Base, and Ent-only. The paper
// finds Bootleg's error stays low and flat as categories get rarer, while
// the baseline and Ent-only degrade.
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

namespace {

/// Rare-proportion of a category's member entities.
std::vector<double> CategoryRareProportion(
    const harness::Environment& env, bool relations) {
  const kb::KnowledgeBase& kb = env.world.kb;
  const int64_t n = relations ? kb.num_relations() : kb.num_types();
  std::vector<int64_t> members(static_cast<size_t>(n), 0);
  std::vector<int64_t> rare(static_cast<size_t>(n), 0);
  for (kb::EntityId e = 0; e < kb.num_entities(); ++e) {
    const bool is_rare = env.counts.Count(e) <= 10;
    const auto& cats = relations ? kb.entity(e).relations : kb.entity(e).types;
    for (int64_t c : cats) {
      ++members[static_cast<size_t>(c)];
      if (is_rare) ++rare[static_cast<size_t>(c)];
    }
  }
  std::vector<double> proportion(static_cast<size_t>(n), 0.0);
  for (int64_t c = 0; c < n; ++c) {
    if (members[static_cast<size_t>(c)] > 0) {
      proportion[static_cast<size_t>(c)] =
          static_cast<double>(rare[static_cast<size_t>(c)]) /
          static_cast<double>(members[static_cast<size_t>(c)]);
    }
  }
  return proportion;
}

/// Rare proportion of the gold's *most head-y* category — the best signal
/// the model could lean on.
double RecordRareProportion(const kb::KnowledgeBase& kb,
                            const std::vector<double>& proportion,
                            const eval::PredictionRecord& r, bool relations) {
  const auto& cats =
      relations ? kb.entity(r.gold).relations : kb.entity(r.gold).types;
  if (cats.empty()) return -1.0;
  double mn = 1.0;
  for (int64_t c : cats) {
    mn = std::min(mn, proportion[static_cast<size_t>(c)]);
  }
  return mn;
}

void Panel(const harness::Environment& env,
           const std::vector<std::pair<const char*, const eval::ResultSet*>>&
               models,
           bool relations) {
  const std::vector<double> proportion = CategoryRareProportion(env, relations);
  const kb::KnowledgeBase& kb = env.world.kb;
  std::printf("\n--- %s panel: error rate vs rare-entity proportion of the "
              "gold's %s ---\n",
              relations ? "Relation" : "Type", relations ? "relations" : "types");
  std::printf("%-22s", "rare-prop bin");
  for (const auto& [name, rs] : models) std::printf(" %12s", name);
  std::printf(" %8s\n", "n");

  // Quantile bin edges over the observed distribution (most synthetic
  // entities are "rare" by the paper's ≤10 definition, so fixed 0.25-wide
  // bins would all collapse into the top one).
  std::vector<double> values;
  for (const eval::PredictionRecord& r : models.front().second->records()) {
    if (!r.Eligible()) continue;
    const double v = RecordRareProportion(kb, proportion, r, relations);
    if (v >= 0.0) values.push_back(v);
  }
  if (values.empty()) return;
  std::sort(values.begin(), values.end());
  double edges[5];
  for (int q = 0; q <= 4; ++q) {
    const size_t idx = std::min(values.size() - 1, values.size() * q / 4);
    edges[q] = values[idx];
  }
  edges[4] += 1e-9;

  for (int b = 0; b < 4; ++b) {
    const double lo = edges[b], hi = edges[b + 1];
    if (hi <= lo) continue;
    std::printf("[%.3f, %.3f)        ", lo, hi);
    int64_t count = 0;
    for (const auto& [name, rs] : models) {
      (void)name;
      auto in_bin = [&](const eval::PredictionRecord& r) {
        const double v = RecordRareProportion(kb, proportion, r, relations);
        return v >= lo && v < hi;
      };
      const eval::Prf p = rs->Filtered(in_bin);
      std::printf(" %12.1f", 100.0 - p.f1());
      count = p.total;
    }
    std::printf(" %8lld\n", static_cast<long long>(count));
  }
}

}  // namespace

int main() {
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  const core::TrainOptions train = harness::DefaultTrainOptions();
  const core::BootlegConfig base = harness::DefaultBootlegConfig();
  auto ned_base = harness::TrainNedBase(&env, "ned_base", train);
  auto bootleg = harness::TrainBootleg(&env, {"bootleg_full", base, train, 7});
  auto ent_only = harness::TrainBootleg(
      &env, {"ent_only", core::BootlegConfig::EntOnly(base), train, 7});

  harness::BucketResult rb =
      harness::EvaluateBuckets(bootleg.get(), env, env.corpus.dev);
  harness::BucketResult rn =
      harness::EvaluateBuckets(ned_base.get(), env, env.corpus.dev);
  harness::BucketResult re =
      harness::EvaluateBuckets(ent_only.get(), env, env.corpus.dev);

  std::printf("\n=== Figure 4: error rate vs rare-proportion of the gold's "
              "categories ===\n");
  const std::vector<std::pair<const char*, const eval::ResultSet*>> models = {
      {"NED-Base", &rn.results},
      {"Ent-only", &re.results},
      {"Bootleg", &rb.results},
  };
  Panel(env, models, /*relations=*/true);
  Panel(env, models, /*relations=*/false);
  std::printf(
      "\nShape check (paper): Bootleg has the lowest error in every bin and "
      "stays\nflat as the rare proportion grows; NED-Base and Ent-only slope "
      "upward.\n");
  return 0;
}

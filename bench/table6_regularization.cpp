// Table 6: micro-F1 over unseen entities on the micro Wikipedia sample as
// the entity-embedding regularization scheme p(e) varies: fixed 0/20/50/80%,
// Pop (more popular → more masked) and InvPop (less popular → more masked).
//
// Paper reference (unseen F1): 0% 48.6, 20% 52.5, 50% 57.7, 80% 59.9,
// Pop 52.4, InvPop 62.2 — the ordering InvPop > 80% > 50% > 20% > Pop ≈ 20%
// is the reproduction target.
#include <cstdio>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  harness::Environment env =
      harness::BuildEnvironment(data::SynthConfig::MicroScale());
  core::TrainOptions train = harness::DefaultTrainOptions();
  train.epochs = 8;  // paper: 8 epochs on the micro dataset

  struct Arm {
    const char* label;
    core::RegConfig reg;
  };
  const Arm arms[] = {
      {"0%", {core::RegScheme::kNone, 0.0f}},
      {"20%", {core::RegScheme::kFixed, 0.2f}},
      {"50%", {core::RegScheme::kFixed, 0.5f}},
      {"80%", {core::RegScheme::kFixed, 0.8f}},
      {"Pop", {core::RegScheme::kPopPow, 0.0f}},
      {"InvPop", {core::RegScheme::kInvPopPow, 0.0f}},
  };

  std::printf("\n=== Table 6: unseen-entity F1 vs regularization p(e) "
              "(micro dataset) ===\n");
  std::printf("%-10s %10s %10s %10s %10s\n", "p(e)", "all", "torso", "tail",
              "unseen");
  for (const Arm& arm : arms) {
    core::BootlegConfig config = harness::DefaultBootlegConfig();
    config.regularization = arm.reg;
    const std::string name = std::string("reg_") + arm.label;
    auto model = harness::TrainBootleg(&env, {name, config, train, 7});
    harness::BucketResult r =
        harness::EvaluateBuckets(model.get(), env, harness::DevPlusTest(env));
    std::printf("%-10s %10.1f %10.1f %10.1f %10.1f\n", arm.label, r.all.f1(),
                r.torso.f1(), r.tail.f1(), r.unseen.f1());
  }
  std::printf(
      "\nShape check (paper): unseen F1 rises with fixed masking strength, "
      "InvPop is\nbest overall, and Pop (masking popular entities) is "
      "clearly worse than InvPop.\n");
  return 0;
}

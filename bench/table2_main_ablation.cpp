// Table 2: Bootleg vs NED-Base and the Ent-only / Type-only / KG-only
// ablations on the Wikipedia-style validation set, bucketed by entity
// popularity (All / Torso / Tail / Unseen).
//
// Paper reference values (F1): NED-Base 85.9/79.3/27.8/18.5,
// Bootleg 91.3/87.3/69.0/68.5, Ent-only 85.8/79.0/37.9/14.9,
// Type-only 88.0/81.6/62.9/61.6, KG-only 87.1/79.4/64.0/64.7.
#include <cstdio>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  std::printf("table2: %lld train sentences, weak-label multiplier %.2fx\n",
              static_cast<long long>(env.corpus.train.size()),
              env.wl_stats.Multiplier());

  const core::TrainOptions train = harness::DefaultTrainOptions();
  const core::BootlegConfig base = harness::DefaultBootlegConfig();

  auto ned_base = harness::TrainNedBase(&env, "ned_base", train);
  auto bootleg = harness::TrainBootleg(&env, {"bootleg_full", base, train, 7});
  auto ent_only = harness::TrainBootleg(
      &env, {"ent_only", core::BootlegConfig::EntOnly(base), train, 7});
  auto type_only = harness::TrainBootleg(
      &env, {"type_only", core::BootlegConfig::TypeOnly(base), train, 7});
  auto kg_only = harness::TrainBootleg(
      &env, {"kg_only", core::BootlegConfig::KgOnly(base), train, 7});

  harness::PrintTableHeader(
      "Table 2: F1 on Wikipedia-style validation",
      {"All", "Torso", "Tail", "Unseen"});

  harness::BucketResult last{};
  auto report = [&](const char* name, eval::NedScorer* model) {
    harness::BucketResult r = harness::EvaluateBuckets(model, env, env.corpus.dev);
    harness::PrintTableRow(
        name, {r.all.f1(), r.torso.f1(), r.tail.f1(), r.unseen.f1()});
    last = std::move(r);
  };
  report("NED-Base", ned_base.get());
  report("Bootleg", bootleg.get());
  report("Bootleg (Ent-only)", ent_only.get());
  report("Bootleg (Type-only)", type_only.get());
  report("Bootleg (KG-only)", kg_only.get());

  harness::PrintTableRow("# Mentions",
                         {static_cast<double>(last.all.total),
                          static_cast<double>(last.torso.total),
                          static_cast<double>(last.tail.total),
                          static_cast<double>(last.unseen.total)});
  return 0;
}

// Design-choice ablations called out in DESIGN.md, beyond the paper's own
// tables:
//   1. ensemble scoring max(E_k vᵀ, E' vᵀ) vs scoring the final output only;
//   2. the paper's *future-work* extension — a 2-hop KG2Ent adjacency
//      (shared-neighbor connectivity), aimed at the multi-hop error bucket
//      the paper identifies in Section 5.
#include <cstdio>

#include "eval/error_analysis.h"
#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

namespace {

/// Error rate on mentions whose gold is 2-hop (not 1-hop) connected to a
/// co-mention — the paper's multi-hop bucket, measured over all mentions.
double MultiHopErrorRate(const kb::KnowledgeBase& kb,
                         const eval::ResultSet& results) {
  int64_t n = 0, errors = 0;
  for (const eval::PredictionRecord& r : results.records()) {
    if (!r.Eligible()) continue;
    if (!eval::InErrorBucket(kb, r, eval::ErrorBucket::kMultiHop)) continue;
    ++n;
    if (!r.Correct()) ++errors;
  }
  return n == 0 ? 0.0 : 100.0 * static_cast<double>(errors) / n;
}

}  // namespace

int main() {
  harness::Environment env =
      harness::BuildEnvironment(data::SynthConfig::MicroScale());
  core::TrainOptions train = harness::DefaultTrainOptions();
  train.epochs = 8;

  struct Arm {
    const char* label;
    const char* name;
    bool ensemble;
    bool two_hop;
    bool two_dimensional;
  };
  const Arm arms[] = {
      {"Bootleg (full)", "abl_full", true, false, true},
      {"  - ensemble scoring", "abl_noens", false, false, true},
      {"  + 2-hop KG2Ent", "abl_twohop", true, true, true},
      {"  1-D dropout (not 2-D)", "abl_1d", true, false, false},
  };

  std::printf("\n=== Design-choice ablations (micro dataset) ===\n");
  std::printf("%-24s %8s %8s %8s %8s %14s\n", "Model", "all", "torso", "tail",
              "unseen", "2hop-slice err");
  for (const Arm& arm : arms) {
    core::BootlegConfig config = harness::DefaultBootlegConfig();
    config.ensemble_scoring = arm.ensemble;
    config.use_two_hop_kg = arm.two_hop;
    config.regularization.two_dimensional = arm.two_dimensional;
    auto model = harness::TrainBootleg(&env, {arm.name, config, train, 7});
    harness::BucketResult r =
        harness::EvaluateBuckets(model.get(), env, harness::DevPlusTest(env));
    std::printf("%-24s %8.1f %8.1f %8.1f %8.1f %14.1f\n", arm.label,
                r.all.f1(), r.torso.f1(), r.tail.f1(), r.unseen.f1(),
                MultiHopErrorRate(env.world.kb, r.results));
  }
  std::printf(
      "\nExpected: removing ensemble scoring costs F1 where the KG module "
      "disagrees with\nthe textual view; the 2-hop adjacency reduces the "
      "multi-hop-slice error rate the\npaper calls out as Bootleg's "
      "fundamental limitation; 1-D dropout underperforms\nthe 2-D scheme on "
      "unseen entities (the Sec. 3.3.1 contrast).\n");
  return 0;
}

// Table 9 (Appendix B): the full micro-dataset ablation — NED-Base, the
// Ent/Type/KG-only models, the fixed-p(e) sweep, and the three inverse-
// popularity curves plus the popularity mirror, over All / Torso / Tail /
// Unseen.
#include <cstdio>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  harness::Environment env =
      harness::BuildEnvironment(data::SynthConfig::MicroScale());
  core::TrainOptions train = harness::DefaultTrainOptions();
  train.epochs = 8;  // paper: 8 epochs on the micro dataset
  const core::BootlegConfig base = harness::DefaultBootlegConfig();

  harness::PrintTableHeader("Table 9: micro-dataset ablation (F1)",
                            {"All", "Torso", "Tail", "Unseen"});

  harness::BucketResult last{};
  auto run = [&](const char* label, eval::NedScorer* model) {
    last = harness::EvaluateBuckets(model, env, harness::DevPlusTest(env));
    harness::PrintTableRow(label, {last.all.f1(), last.torso.f1(),
                                   last.tail.f1(), last.unseen.f1()});
  };

  {
    auto m = harness::TrainNedBase(&env, "ned_base", train);
    run("NED-Base", m.get());
  }
  {
    auto m = harness::TrainBootleg(
        &env, {"ent_only", core::BootlegConfig::EntOnly(base), train, 7});
    run("Bootleg (Ent-only)", m.get());
  }
  {
    auto m = harness::TrainBootleg(
        &env, {"type_only", core::BootlegConfig::TypeOnly(base), train, 7});
    run("Bootleg (Type-only)", m.get());
  }
  {
    auto m = harness::TrainBootleg(
        &env, {"kg_only", core::BootlegConfig::KgOnly(base), train, 7});
    run("Bootleg (KG-only)", m.get());
  }

  struct RegArm {
    const char* label;
    const char* name;
    core::RegConfig reg;
  };
  const RegArm arms[] = {
      {"Bootleg (p(e) = 0%)", "reg_0%", {core::RegScheme::kNone, 0.0f}},
      {"Bootleg (p(e) = 20%)", "reg_20%", {core::RegScheme::kFixed, 0.2f}},
      {"Bootleg (p(e) = 50%)", "reg_50%", {core::RegScheme::kFixed, 0.5f}},
      {"Bootleg (p(e) = 80%)", "reg_80%", {core::RegScheme::kFixed, 0.8f}},
      {"Bootleg (InvPopLog)", "reg_invlog", {core::RegScheme::kInvPopLog, 0.0f}},
      {"Bootleg (InvPopPow)", "reg_InvPop", {core::RegScheme::kInvPopPow, 0.0f}},
      {"Bootleg (InvPopLin)", "reg_invlin", {core::RegScheme::kInvPopLin, 0.0f}},
      {"Bootleg (PopPow)", "reg_Pop", {core::RegScheme::kPopPow, 0.0f}},
  };
  for (const RegArm& arm : arms) {
    core::BootlegConfig config = base;
    config.regularization = arm.reg;
    auto m = harness::TrainBootleg(&env, {arm.name, config, train, 7});
    run(arm.label, m.get());
  }

  harness::PrintTableRow("# Mentions",
                         {static_cast<double>(last.all.total),
                          static_cast<double>(last.torso.total),
                          static_cast<double>(last.tail.total),
                          static_cast<double>(last.unseen.total)});
  return 0;
}

// Observability overhead benchmark: quantifies what the trace spans cost when
// disabled (the price every hot path pays unconditionally) and when enabled,
// then runs a small in-process training + serving workload with tracing on
// and exports the per-stage wall-time breakdown.
//
//   obs_bench [--out PATH]
//
// Reported:
//   - disabled/enabled span cost in ns per span (tight-loop microbenchmark)
//   - disabled-span overhead on a 128x128 MatMul loop, in percent — the
//     acceptance bar is <2%, i.e. spans are cheap enough to leave compiled
//     into every kernel-adjacent path
//   - per-stage span summaries (train.*, infer.*, serve.*, nn.*, eval.*) and
//     the metrics registry after the workload
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/inference_engine.h"
#include "tensor/tensor.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace bootleg;  // NOLINT

namespace {

volatile int64_t g_sink = 0;  // defeats loop elision without DoNotOptimize

/// ns per iteration of a loop whose body is one span scope (plus the sink
/// write both variants share).
double TimeSpanLoopNs(int64_t iters) {
  const auto begin = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    OBS_SPAN("bench.span_loop");
    g_sink = i;
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
  return ns / static_cast<double>(iters);
}

double TimeBareLoopNs(int64_t iters) {
  const auto begin = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < iters; ++i) {
    g_sink = i;
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
  return ns / static_cast<double>(iters);
}

/// Seconds for `reps` 128x128 MatMuls, body optionally under a span scope.
double TimeMatMulLoop(const tensor::Tensor& a, const tensor::Tensor& b,
                      int reps, bool with_span) {
  const auto begin = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    if (with_span) {
      OBS_SPAN("bench.matmul");
      g_sink = static_cast<int64_t>(tensor::MatMul(a, b).at(0));
    } else {
      g_sink = static_cast<int64_t>(tensor::MatMul(a, b).at(0));
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
      .count();
}

double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_obs.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }
  util::ThreadPool::ResetGlobal(util::ThreadPool::EnvThreads());

  // --- Span cost microbenchmark -------------------------------------------
  obs::Trace::Enable(false);
  TimeSpanLoopNs(1000000);  // warm up the stage slot and the loop
  std::vector<double> disabled, bare, enabled;
  for (int r = 0; r < 5; ++r) {
    disabled.push_back(TimeSpanLoopNs(10000000));
    bare.push_back(TimeBareLoopNs(10000000));
  }
  obs::Trace::Enable(true);
  for (int r = 0; r < 5; ++r) enabled.push_back(TimeSpanLoopNs(1000000));
  obs::Trace::Enable(false);
  const double disabled_ns = MedianOf(disabled) - MedianOf(bare);
  const double enabled_ns = MedianOf(enabled) - MedianOf(bare);

  // --- Disabled-span overhead on the BM_MatMul/128 workload ---------------
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({128, 128}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({128, 128}, &rng);
  TimeMatMulLoop(a, b, 10, false);  // warmup
  // Minimum over interleaved repetitions: the span cost (~ns) is four orders
  // of magnitude under one matmul (~hundreds of µs), so scheduler noise, not
  // the span, dominates any single rep; the minimum rejects that noise.
  double plain = 1e300, spanned = 1e300;
  for (int r = 0; r < 9; ++r) {
    plain = std::min(plain, TimeMatMulLoop(a, b, 50, false));
    spanned = std::min(spanned, TimeMatMulLoop(a, b, 50, true));
  }
  const double matmul_overhead_pct = (spanned / plain - 1.0) * 100.0;

  std::printf("span cost: disabled %.2f ns, enabled %.1f ns; "
              "disabled-span overhead on MatMul/128: %.3f%%\n",
              disabled_ns, enabled_ns, matmul_overhead_pct);

  // --- Traced workload: one small training run + serving requests ---------
  obs::Trace::Reset();
  obs::Trace::Enable(true);

  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_entities = 300;
  config.num_pages = 60;
  const data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  data::Corpus corpus = generator.Generate();
  data::ApplyWeakLabeling(world.kb, &corpus.train);
  const data::EntityCounts counts =
      data::EntityCounts::FromTraining(corpus.train);
  data::ExampleBuilder builder(&world.candidates, &world.vocab);
  std::vector<data::SentenceExample> examples =
      builder.BuildAll(corpus.train, data::ExampleOptions());
  examples.resize(std::min<size_t>(examples.size(), 200));

  core::BootlegConfig model_config;
  model_config.encoder.max_len = 32;
  core::BootlegModel model(&world.kb, world.vocab.size(), model_config, 7);
  model.SetEntityCounts(&counts);
  core::Trainable<core::BootlegModel> trainable(&model);
  core::TrainOptions options;
  options.epochs = 1;
  core::Train(&trainable, examples, options);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bootleg_obs_bench").string();
  std::filesystem::create_directories(dir);
  BOOTLEG_CHECK(world.kb.Save(dir + "/kb.bin").ok());
  BOOTLEG_CHECK(world.candidates.Save(dir + "/candidates.bin").ok());
  BOOTLEG_CHECK(world.vocab.Save(dir + "/vocab.bin").ok());
  BOOTLEG_CHECK(model.store().Save(dir + "/model.bin").ok());

  serve::EngineOptions engine_options;
  engine_options.data_dir = dir;
  engine_options.model_path = dir + "/model.bin";
  auto engine_or = serve::InferenceEngine::Create(engine_options);
  BOOTLEG_CHECK_MSG(engine_or.ok(), engine_or.status().ToString());
  serve::InferenceEngine& engine = *engine_or.value();

  std::vector<std::string> texts;
  for (const data::Sentence& s : corpus.dev) {
    if (s.mentions.empty()) continue;
    std::string text;
    for (const std::string& t : s.tokens) {
      if (!text.empty()) text += ' ';
      text += t;
    }
    texts.push_back(std::move(text));
    if (texts.size() == 32) break;
  }
  BOOTLEG_CHECK(!texts.empty());
  core::BootlegModel::InferenceScratch scratch;
  for (int round = 0; round < 4; ++round) {
    engine.Disambiguate(texts, &scratch);
  }
  obs::Trace::Enable(false);

  // --- Export --------------------------------------------------------------
  std::string json = "{\n  \"benchmark\": \"bootleg observability\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"span_disabled_ns\": %.3f,\n  \"span_enabled_ns\": %.2f,\n"
                "  \"matmul128_disabled_span_overhead_pct\": %.3f,\n",
                disabled_ns, enabled_ns, matmul_overhead_pct);
  json += buf;
  json += "  \"stages\": [\n";
  const std::vector<obs::SpanSummary> summaries = obs::Trace::Summaries();
  for (size_t i = 0; i < summaries.size(); ++i) {
    json += "    " + summaries[i].ToJson();
    json += i + 1 == summaries.size() ? "\n" : ",\n";
  }
  json += "  ],\n";
  json += "  \"registry\": " + obs::MetricsRegistry::Global().DumpJson() + "\n";
  json += "}\n";

  std::ofstream f(out_path);
  f << json;
  f.close();
  std::printf("wrote %s (%zu traced stages)\n", out_path.c_str(),
              summaries.size());
  return 0;
}

// Tables 3, 4, 12, 13: the TACRED-sim downstream relation-extraction
// evaluation. Three models are trained on the same data: a text-only
// SpanBERT stand-in, a KnowBERT stand-in (text + static entity embeddings of
// the prior candidate), and the Bootleg downstream model (text + frozen
// contextual Bootleg embeddings).
//
// Paper reference (TACRED-revisited test F1): SpanBERT 78.0, KnowBERT 79.3,
// Bootleg 80.3 — the target shape is Bootleg > KnowBERT > SpanBERT.
#include <cstdio>

#include "downstream/relation_extraction.h"
#include "harness/experiment.h"
#include "util/string_util.h"

using namespace bootleg;  // NOLINT

namespace {

/// Error rate of a prediction list against the gold labels.
double ErrorRate(const std::vector<downstream::ReExample>& test,
                 const std::vector<int64_t>& preds,
                 const std::function<bool(const downstream::ReExample&)>& keep) {
  int64_t n = 0, errors = 0;
  for (size_t i = 0; i < test.size(); ++i) {
    if (!keep(test[i])) continue;
    ++n;
    if (preds[i] != test[i].label) ++errors;
  }
  return n == 0 ? 0.0 : static_cast<double>(errors) / static_cast<double>(n);
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

}  // namespace

int main() {
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  auto bootleg = harness::TrainBootleg(
      &env, {"bootleg_full", harness::DefaultBootlegConfig(),
             harness::DefaultTrainOptions(), 7});

  downstream::ReDataset ds =
      downstream::GenerateReDataset(env.world, /*num_train=*/2000,
                                    /*num_test=*/600, /*seed=*/31);
  downstream::PrepareBootlegFeatures(bootleg.get(), env.world, &ds.train);
  downstream::PrepareBootlegFeatures(bootleg.get(), env.world, &ds.test);
  const tensor::Tensor& entity_table =
      bootleg->store().GetEmbedding("entity_emb")->table();
  downstream::PrepareStaticFeatures(entity_table, &ds.train);
  downstream::PrepareStaticFeatures(entity_table, &ds.test);

  const int64_t no_rel = ds.num_labels - 1;
  downstream::ReTrainOptions train_options;
  std::printf("TACRED-sim: %zu train / %zu test examples, %lld labels\n",
              ds.train.size(), ds.test.size(),
              static_cast<long long>(ds.num_labels));

  struct Arm {
    downstream::ReMode mode;
    int64_t dim;
  };
  const Arm arms[] = {
      {downstream::ReMode::kText, 0},
      {downstream::ReMode::kStatic, entity_table.size(1)},
      {downstream::ReMode::kBootleg, entity_table.size(1)},
  };

  std::printf("\n=== Table 3: TACRED-sim test micro-F1 ===\n");
  std::printf("%-34s %10s %10s %10s\n", "Model", "P", "R", "F1");
  std::vector<downstream::ReMetrics> all_metrics;
  for (const Arm& arm : arms) {
    downstream::ReModel model(env.world.vocab.size(), ds.num_labels, arm.mode,
                              arm.dim, /*seed=*/17);
    downstream::TrainRe(&model, ds.train, train_options);
    downstream::ReMetrics metrics =
        downstream::EvaluateRe(&model, ds.test, no_rel);
    std::printf("%-34s %10.1f %10.1f %10.1f\n",
                downstream::ReModeName(arm.mode), metrics.precision(),
                metrics.recall(), metrics.f1());
    all_metrics.push_back(std::move(metrics));
  }
  const std::vector<int64_t>& pred_text = all_metrics[0].predictions;
  const std::vector<int64_t>& pred_bootleg = all_metrics[2].predictions;

  // --- Table 4: examples the Bootleg model corrects. -------------------------
  std::printf("\n=== Table 4: corrections by the Bootleg downstream model ===\n");
  int shown = 0;
  for (size_t i = 0; i < ds.test.size() && shown < 3; ++i) {
    const downstream::ReExample& ex = ds.test[i];
    if (pred_bootleg[i] == ex.label && pred_text[i] != ex.label &&
        ex.label != no_rel) {
      std::vector<std::string> words;
      for (int64_t id : ex.token_ids) words.push_back(env.world.vocab.Token(id));
      std::printf("  \"%s\"\n    gold=%s text-only=%s signals: rel=%d type=%d\n",
                  util::Join(words, " ").c_str(),
                  env.world.kb.relation(ex.label).name.c_str(),
                  pred_text[i] == no_rel
                      ? "no_relation"
                      : env.world.kb.relation(pred_text[i]).name.c_str(),
                  ex.subj_obj_have_relation_signal ? 1 : 0,
                  ex.subj_obj_have_type_signal ? 1 : 0);
      ++shown;
    }
  }
  if (shown == 0) std::printf("  (no corrections found in this run)\n");

  // --- Table 12: error-rate gap with vs without the Bootleg signal. ----------
  // The paper splits at the median per-word signal proportion; with exactly
  // two mentions per synthetic example that proportion only tracks sentence
  // length, so we contrast examples *with* the signal against those
  // *without* it (the same question, sharper at this scale).
  std::printf("\n=== Table 12: error-rate gap (text − Bootleg) with vs "
              "without each signal ===\n");
  std::printf("%-12s %12s %10s %10s %14s\n", "Signal", "# with", "gap with",
              "gap w/o", "ratio");
  struct Signal {
    const char* name;
    std::function<bool(const downstream::ReExample&)> has;
  };
  const Signal signals[] = {
      {"Entity",
       [](const auto& e) {
         return !e.ned.mentions[0].candidates.empty() &&
                !e.ned.mentions[1].candidates.empty();
       }},
      {"Relation", [](const auto& e) { return e.subj_obj_have_relation_signal; }},
      {"Type", [](const auto& e) { return e.subj_obj_have_type_signal; }},
  };
  for (const Signal& signal : signals) {
    int64_t with_signal = 0;
    for (const downstream::ReExample& ex : ds.test) {
      if (signal.has(ex)) ++with_signal;
    }
    auto gap = [&](bool want) {
      auto keep = [&](const downstream::ReExample& ex) {
        return signal.has(ex) == want;
      };
      return ErrorRate(ds.test, pred_text, keep) -
             ErrorRate(ds.test, pred_bootleg, keep);
    };
    const double with = gap(true);
    const double without = gap(false);
    const double ratio = without <= 0.0 ? 0.0 : with / without;
    std::printf("%-12s %12lld %10.3f %10.3f %14.2f\n", signal.name,
                static_cast<long long>(with_signal), with, without, ratio);
  }

  // --- Table 13: error-rate ratio on signal slices. --------------------------
  std::printf("\n=== Table 13: SpanBERT/Bootleg error-rate ratio per "
              "subject-object signal slice ===\n");
  std::printf("%-12s %12s %24s\n", "Signal", "# examples", "Base/Bootleg err");
  struct Slice {
    const char* name;
    std::function<bool(const downstream::ReExample&)> keep;
  };
  const Slice slices[] = {
      {"Entity", [](const auto& e) { return e.entity_signal_fraction > 0.0; }},
      {"Relation", [](const auto& e) { return e.subj_obj_have_relation_signal; }},
      {"Obj Type", [](const auto& e) { return e.subj_obj_have_type_signal; }},
  };
  for (const Slice& slice : slices) {
    int64_t n = 0;
    for (const downstream::ReExample& ex : ds.test) {
      if (slice.keep(ex)) ++n;
    }
    const double base_err = ErrorRate(ds.test, pred_text, slice.keep);
    const double bl_err = ErrorRate(ds.test, pred_bootleg, slice.keep);
    std::printf("%-12s %12lld %24.2f\n", slice.name, static_cast<long long>(n),
                bl_err == 0.0 ? 0.0 : base_err / bl_err);
  }
  std::printf(
      "\nShape check (paper): Bootleg > KnowBERT > SpanBERT on F1; the "
      "ratios in Tables\n12/13 exceed 1.0 (more Bootleg signal → bigger "
      "improvement over the baseline).\n");
  return 0;
}

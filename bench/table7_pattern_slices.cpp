// Table 7: Overall/Tail F1 for each ablation model over the four reasoning-
// pattern slices — Entity (gold has no type/relation signals), Type
// Consistency (≥3 sequential golds sharing a type), KG Relation (golds
// connected in the KG), and Type Affordance (sentence contains a TF-IDF
// affordance keyword of the gold's type). Also reports slice coverage.
#include <cstdio>

#include "data/slices.h"
#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  const core::TrainOptions train = harness::DefaultTrainOptions();
  const core::BootlegConfig base = harness::DefaultBootlegConfig();

  auto ned_base = harness::TrainNedBase(&env, "ned_base", train);
  auto bootleg = harness::TrainBootleg(&env, {"bootleg_full", base, train, 7});
  auto ent_only = harness::TrainBootleg(
      &env, {"ent_only", core::BootlegConfig::EntOnly(base), train, 7});
  auto type_only = harness::TrainBootleg(
      &env, {"type_only", core::BootlegConfig::TypeOnly(base), train, 7});
  auto kg_only = harness::TrainBootleg(
      &env, {"kg_only", core::BootlegConfig::KgOnly(base), train, 7});

  // Affordance keywords are mined from training data by TF-IDF, per Sec. 5.
  const data::AffordanceKeywords affordance =
      data::AffordanceKeywords::MineTfIdf(env.world.kb, env.corpus.train);
  std::printf("affordance keyword coverage over dev: %.0f%% (paper: 88%%)\n",
              100.0 * affordance.Coverage(env.world.kb, env.corpus.dev));

  struct Row {
    const char* name;
    eval::NedScorer* model;
  };
  const Row rows[] = {
      {"NED-Base", ned_base.get()},      {"Bootleg", bootleg.get()},
      {"Bootleg (Ent-only)", ent_only.get()},
      {"Bootleg (Type-only)", type_only.get()},
      {"Bootleg (KG-only)", kg_only.get()},
  };
  const data::PatternSlice slices[] = {
      data::PatternSlice::kEntity, data::PatternSlice::kConsistency,
      data::PatternSlice::kKgRelation, data::PatternSlice::kAffordance};

  std::printf("\n=== Table 7: Overall/Tail F1 per reasoning-pattern slice ===\n");
  std::printf("%-24s", "Model");
  for (data::PatternSlice s : slices) {
    std::printf(" %19s", data::PatternSliceName(s));
  }
  std::printf("\n");

  for (const Row& row : rows) {
    harness::BucketResult r =
        harness::EvaluateBuckets(row.model, env, env.corpus.dev);
    std::printf("%-24s", row.name);
    for (data::PatternSlice s : slices) {
      auto in_slice = [&](const eval::PredictionRecord& rec) {
        return data::InSlice(env.world.kb, *rec.sentence, rec.mention_idx, s,
                             &affordance);
      };
      const eval::Prf overall = r.results.Filtered(in_slice);
      const eval::Prf tail = r.results.Filtered([&](const auto& rec) {
        return (rec.bucket == data::PopularityBucket::kTail ||
                rec.bucket == data::PopularityBucket::kUnseen) &&
               in_slice(rec);
      });
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.0f/%.0f", overall.f1(), tail.f1());
      std::printf(" %19s", cell);
    }
    std::printf("\n");
  }

  // Slice sizes, mirroring the paper's slice-count note.
  std::printf("%-24s", "# eligible (all/tail)");
  harness::BucketResult sizing =
      harness::EvaluateBuckets(ned_base.get(), env, env.corpus.dev);
  for (data::PatternSlice s : slices) {
    auto in_slice = [&](const eval::PredictionRecord& rec) {
      return data::InSlice(env.world.kb, *rec.sentence, rec.mention_idx, s,
                           &affordance);
    };
    const eval::Prf overall = sizing.results.Filtered(in_slice);
    const eval::Prf tail = sizing.results.Filtered([&](const auto& rec) {
      return (rec.bucket == data::PopularityBucket::kTail ||
              rec.bucket == data::PopularityBucket::kUnseen) &&
             in_slice(rec);
    });
    char cell[32];
    std::snprintf(cell, sizeof(cell), "%lld/%lld",
                  static_cast<long long>(overall.total),
                  static_cast<long long>(tail.total));
    std::printf(" %19s", cell);
  }
  std::printf(
      "\n\nShape check (paper): Bootleg leads every slice (KG-only is close "
      "on KG Relation);\nthe tail lift over NED-Base is largest on the "
      "pattern slices.\n");
  return 0;
}

// Table 11 (Appendix B): Bootleg trained with vs without weak labeling on
// the micro dataset, with popularity buckets defined by *pre-weak-label*
// anchor counts (so the comparison isolates the lift from weak labels).
//
// Paper reference: weak labeling lifts unseen entities (+2.6 F1 in the
// paper's direction No-WL 60.7 → WL 63.3... reported as WL giving a 2.6 F1
// lift over unseen; torso can slightly prefer No-WL due to label noise).
#include <cstdio>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  const data::SynthConfig micro = data::SynthConfig::MicroScale();
  core::TrainOptions train = harness::DefaultTrainOptions();
  train.epochs = 8;
  const core::BootlegConfig config = harness::DefaultBootlegConfig();

  harness::Environment with_wl = harness::BuildEnvironment(micro, true);
  harness::Environment no_wl = harness::BuildEnvironment(micro, false);

  std::printf("weak labeling multiplier: %.2fx (%lld anchors -> %lld labels)\n",
              with_wl.wl_stats.Multiplier(),
              static_cast<long long>(with_wl.wl_stats.anchor_labels),
              static_cast<long long>(with_wl.wl_stats.total_labels_after));

  auto model_wl = harness::TrainBootleg(&with_wl, {"bootleg_wl", config, train, 7});
  auto model_no = harness::TrainBootleg(&no_wl, {"bootleg_nowl", config, train, 7});

  // Buckets by gold anchor counts before weak labeling, per the paper.
  harness::BucketResult r_no = harness::EvaluateBuckets(
      model_no.get(), no_wl, harness::DevPlusTest(no_wl), false,
      &no_wl.counts_anchor_only);
  harness::BucketResult r_wl = harness::EvaluateBuckets(
      model_wl.get(), with_wl, harness::DevPlusTest(with_wl), false,
      &with_wl.counts_anchor_only);

  harness::PrintTableHeader("Table 11: weak labeling ablation (micro dataset)",
                            {"All", "Torso", "Tail", "Unseen"});
  harness::PrintTableRow("Bootleg (No WL)", {r_no.all.f1(), r_no.torso.f1(),
                                             r_no.tail.f1(), r_no.unseen.f1()});
  harness::PrintTableRow("Bootleg (WL)", {r_wl.all.f1(), r_wl.torso.f1(),
                                          r_wl.tail.f1(), r_wl.unseen.f1()});
  harness::PrintTableRow("# Mentions",
                         {static_cast<double>(r_wl.all.total),
                          static_cast<double>(r_wl.torso.total),
                          static_cast<double>(r_wl.tail.total),
                          static_cast<double>(r_wl.unseen.total)});
  std::printf(
      "\nShape check (paper): weak labeling lifts unseen entities; the noisy "
      "labels may\ncost a few tenths on the torso.\n");
  return 0;
}

// Micro-kernel throughput benchmarks (google-benchmark): the tensor and
// model kernels that dominate training and inference time — matmul,
// softmax, multi-head attention, the KG2Ent adjacency step, candidate
// generation, and end-to-end Bootleg sentence inference.
#include <benchmark/benchmark.h>

#include "backend/backend.h"
#include "core/model.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/weak_label.h"
#include "data/world.h"
#include "eval/evaluator.h"
#include "nn/attention.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

using namespace bootleg;  // NOLINT

namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

// Pre-rewrite naive kernel, kept as the speedup baseline for the blocked
// production MatMul above.
void BM_MatMulReference(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::MatMulReference(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMulReference)->Arg(32)->Arg(64)->Arg(128);

// Per-backend inference MatMul. Single-thread on purpose: the backend
// speedup criterion is per-core, and the SIMD kernels parallelize with the
// same row partition as the reference so the ratio carries to any pool size.
void BM_BackendMatMul(benchmark::State& state, const char* spec) {
  const int64_t n = state.range(0);
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor b = tensor::Tensor::Randn({n, n}, &rng);
  auto be = backend::Backend::Create(spec).value();
  util::ThreadPool::ResetGlobal(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be->MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  util::ThreadPool::ResetGlobal(util::ThreadPool::EnvThreads());
}
BENCHMARK_CAPTURE(BM_BackendMatMul, ref, "ref")->Arg(32)->Arg(64)->Arg(128);
BENCHMARK_CAPTURE(BM_BackendMatMul, simd, "simd")->Arg(32)->Arg(64)->Arg(128);

// Per-backend affine layer (x @ W + bias), the shape the q8 backend
// quantizes: simd_q8 runs int8 x int8 dot products against its packed
// weights, ref and simd run the float kernels.
void BM_BackendLinear(benchmark::State& state, const char* spec) {
  const int64_t n = state.range(0);
  util::Rng rng(1);
  tensor::Tensor x = tensor::Tensor::Randn({64, n}, &rng);
  tensor::Tensor w = tensor::Tensor::Randn({n, n}, &rng);
  tensor::Tensor bias = tensor::Tensor::Randn({n}, &rng);
  auto be = backend::Backend::Create(spec).value();
  be->LoadModel({{"bench_linear", &w, &bias}});
  util::ThreadPool::ResetGlobal(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(be->LinearForward(x, w, bias));
  }
  state.SetItemsProcessed(state.iterations() * 64 * n * n);
  util::ThreadPool::ResetGlobal(util::ThreadPool::EnvThreads());
}
BENCHMARK_CAPTURE(BM_BackendLinear, ref, "ref")->Arg(64)->Arg(128);
BENCHMARK_CAPTURE(BM_BackendLinear, simd, "simd")->Arg(64)->Arg(128);
BENCHMARK_CAPTURE(BM_BackendLinear, simd_q8, "simd_q8")->Arg(64)->Arg(128);

void BM_SoftmaxRows(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(1);
  tensor::Tensor a = tensor::Tensor::Randn({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::SoftmaxRows(a));
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(64)->Arg(256);

void BM_MultiHeadAttention(benchmark::State& state) {
  const int64_t rows = state.range(0);
  util::Rng rng(1);
  nn::ParameterStore store;
  nn::MultiHeadAttention mha(&store, "mha", 64, 4, &rng);
  tensor::Var q = tensor::Var::Constant(tensor::Tensor::Randn({rows, 64}, &rng));
  tensor::Var k = tensor::Var::Constant(tensor::Tensor::Randn({16, 64}, &rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mha.Attend(q, k));
  }
}
BENCHMARK(BM_MultiHeadAttention)->Arg(8)->Arg(32);

void BM_CandidateGeneration(benchmark::State& state) {
  data::SynthConfig config = data::SynthConfig::MicroScale();
  const data::SynthWorld world = data::BuildWorld(config);
  util::Rng rng(3);
  std::vector<std::string> aliases;
  for (int i = 0; i < 256; ++i) {
    const kb::EntityId e = world.SampleEntity(&rng, true);
    aliases.push_back(world.kb.entity(e).aliases.front());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.candidates.Lookup(aliases[i++ % aliases.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CandidateGeneration);

void BM_BootlegInference(benchmark::State& state) {
  data::SynthConfig config = data::SynthConfig::MicroScale();
  const data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  data::Corpus corpus = generator.Generate();
  data::ExampleBuilder builder(&world.candidates, &world.vocab);
  const std::vector<data::SentenceExample> examples =
      builder.BuildAll(corpus.dev, data::ExampleOptions());
  core::BootlegConfig model_config;
  model_config.encoder.max_len = 32;
  core::BootlegModel model(&world.kb, world.vocab.size(), model_config, 7);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(examples[i++ % examples.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BootlegInference);

void BM_KgAdjacencySoftmax(benchmark::State& state) {
  const int64_t rows = state.range(0);
  util::Rng rng(1);
  tensor::Tensor k({rows, rows});
  for (int64_t i = 0; i < rows * rows; ++i) {
    k.at(i) = rng.Bernoulli(0.1) ? 1.0f : 0.0f;
  }
  tensor::Var w = tensor::Var::Leaf(tensor::Tensor::Ones({1}), true);
  tensor::Var e = tensor::Var::Constant(tensor::Tensor::Randn({rows, 64}, &rng));
  for (auto _ : state) {
    tensor::Var attn = tensor::SoftmaxRows(tensor::AddScaledIdentity(k, w));
    benchmark::DoNotOptimize(tensor::Add(tensor::MatMul(attn, e), e));
  }
}
BENCHMARK(BM_KgAdjacencySoftmax)->Arg(8)->Arg(32);

// One full training epoch over a micro-scale corpus, serial vs data-parallel
// (arg = worker count; 1 takes the exact legacy serial loop). The EXPERIMENTS
// speedup table reads these numbers.
void BM_TrainEpoch(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_entities = 300;
  config.num_pages = 60;
  const data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  data::Corpus corpus = generator.Generate();
  data::ApplyWeakLabeling(world.kb, &corpus.train);
  const data::EntityCounts counts = data::EntityCounts::FromTraining(corpus.train);
  data::ExampleBuilder builder(&world.candidates, &world.vocab);
  std::vector<data::SentenceExample> examples =
      builder.BuildAll(corpus.train, data::ExampleOptions());
  examples.resize(std::min<size_t>(examples.size(), 200));

  util::ThreadPool::ResetGlobal(threads);
  for (auto _ : state) {
    state.PauseTiming();
    core::BootlegConfig model_config;
    model_config.encoder.max_len = 32;
    core::BootlegModel model(&world.kb, world.vocab.size(), model_config, 7);
    model.SetEntityCounts(&counts);
    core::Trainable<core::BootlegModel> trainable(&model);
    core::TrainOptions options;
    options.epochs = 1;
    options.num_threads = threads;
    state.ResumeTiming();
    benchmark::DoNotOptimize(core::Train(&trainable, examples, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(examples.size()));
  util::ThreadPool::ResetGlobal(1);
}
BENCHMARK(BM_TrainEpoch)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Parallel inference over a sentence set (arg = worker count).
void BM_ParallelEval(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  data::SynthConfig config = data::SynthConfig::MicroScale();
  const data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  data::Corpus corpus = generator.Generate();
  data::ApplyWeakLabeling(world.kb, &corpus.train);
  const data::EntityCounts counts = data::EntityCounts::FromTraining(corpus.train);
  data::ExampleBuilder builder(&world.candidates, &world.vocab);
  corpus.dev.resize(std::min<size_t>(corpus.dev.size(), 100));
  core::BootlegConfig model_config;
  model_config.encoder.max_len = 32;
  core::BootlegModel model(&world.kb, world.vocab.size(), model_config, 7);
  model.SetEntityCounts(&counts);

  util::ThreadPool::ResetGlobal(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eval::RunEvaluation(
        &model, corpus.dev, builder, data::ExampleOptions(), counts, threads));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.dev.size()));
  util::ThreadPool::ResetGlobal(1);
}
BENCHMARK(BM_ParallelEval)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Embedding-store benchmark: quantifies what serving entity features from a
// memory-mapped (optionally int8-quantized) store costs against the classic
// in-heap frozen table, and what it saves in resident memory.
//
//   store_bench [--out PATH]
//
// Reported:
//   - gather cost in ns per row for heap floats, mmap floats (zero-copy
//     RowPtr) and mmap int8 (dequantize-on-gather), over a synthetic
//     20k x 128 table with a uniform-random access pattern
//   - resident bytes of the float heap table vs the mapped float / int8
//     stores; the acceptance bar is >=3x reduction for int8 (the raw ratio
//     is 4x, minus per-row scales and per-shard headers)
//   - end-to-end serve-path cost: batched PredictExamples latency on a
//     synthetic world with the heap path, the float store and the int8
//     store; the acceptance bar is <20% overhead for the store paths
//   - int8 gather+dequant fusion: ns/row for the pre-fusion scalar
//     store::DequantizeRow loop vs the fused SIMD backend::DequantRow the
//     int8 view's GatherRow now runs; the acceptance bar is <=12 ns/row fused
//   - per-backend serve pass: the same PredictExamples batch under the
//     ref, simd and simd_q8 inference backends (heap store)
//   - live index mutation: AddEntityLive latency (induce + publish a chained
//     generation + in-process adopt) and time_to_first_correct_serve (the
//     wall time from the add_entity call until a Disambiguate reply resolves
//     the brand-new alias), plus gather cost through the delta chain before
//     and after Compact; the acceptance bar is first correct serve well
//     under a second — no retrain, no re-export
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "backend/simd_primitives.h"
#include "core/model.h"
#include "index/live_index.h"
#include "data/example.h"
#include "data/generator.h"
#include "data/world.h"
#include "serve/inference_engine.h"
#include "store/embedding_store.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace bootleg;  // NOLINT

namespace {

volatile float g_sink = 0.0f;  // defeats loop elision

double MedianOf(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// ns per row gathering `ids` through a view into `dst`, summing one element
/// per row into the sink so the loads cannot be elided.
double TimeGatherNs(const store::StoreView& view,
                    const std::vector<int64_t>& ids, float* dst) {
  const int64_t cols = view.cols();
  const auto begin = std::chrono::steady_clock::now();
  float acc = 0.0f;
  for (const int64_t id : ids) {
    const float* src = view.RowPtr(id);
    if (src == nullptr) {
      view.GatherRow(id, dst);
      src = dst;
    }
    acc += src[0] + src[cols - 1];
  }
  g_sink = acc;
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
  return ns / static_cast<double>(ids.size());
}

/// Seconds to run every dev example through the engine once, in one batch.
double TimePredictPass(serve::InferenceEngine* engine,
                       const std::vector<const data::SentenceExample*>& batch,
                       core::BootlegModel::InferenceScratch* scratch) {
  const auto begin = std::chrono::steady_clock::now();
  const auto preds = engine->PredictExamples(batch, scratch);
  g_sink = static_cast<float>(preds.size());
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_store.json";
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }
  util::ThreadPool::ResetGlobal(util::ThreadPool::EnvThreads());

  const std::string work_dir =
      (std::filesystem::temp_directory_path() / "bootleg_store_bench").string();
  std::filesystem::remove_all(work_dir);
  std::filesystem::create_directories(work_dir);

  // --- Gather microbenchmark over a synthetic 20k x 128 table --------------
  const int64_t rows = 20000, cols = 128;
  util::Rng rng(17);
  std::vector<float> table(static_cast<size_t>(rows * cols));
  for (float& v : table) {
    v = static_cast<float>(rng.Normal(0.0, 0.25));
  }

  store::WriteOptions write_options;
  write_options.shards = 8;
  write_options.dtype = store::Dtype::kFloat32;
  BOOTLEG_CHECK(store::WriteStore(work_dir + "/float_store",
                                  {{"static", table.data(), rows, cols}},
                                  write_options)
                    .ok());
  write_options.dtype = store::Dtype::kInt8;
  BOOTLEG_CHECK(store::WriteStore(work_dir + "/int8_store",
                                  {{"static", table.data(), rows, cols}},
                                  write_options)
                    .ok());

  auto float_store = store::EmbeddingStore::Open(work_dir + "/float_store");
  auto int8_store = store::EmbeddingStore::Open(work_dir + "/int8_store");
  BOOTLEG_CHECK(float_store.ok() && int8_store.ok());
  const store::HeapView heap_view(table.data(), rows, cols);
  const auto mmap_float_view = float_store.value()->View("static").value();
  const auto mmap_int8_view = int8_store.value()->View("static").value();

  std::vector<int64_t> ids(200000);
  for (int64_t& id : ids) id = rng.UniformInt(0, rows - 1);
  std::vector<float> dst(static_cast<size_t>(cols));

  TimeGatherNs(heap_view, ids, dst.data());  // warm up caches and pages
  TimeGatherNs(*mmap_float_view, ids, dst.data());
  TimeGatherNs(*mmap_int8_view, ids, dst.data());
  std::vector<double> heap_ns, mmap_float_ns, mmap_int8_ns;
  for (int r = 0; r < 7; ++r) {
    heap_ns.push_back(TimeGatherNs(heap_view, ids, dst.data()));
    mmap_float_ns.push_back(TimeGatherNs(*mmap_float_view, ids, dst.data()));
    mmap_int8_ns.push_back(TimeGatherNs(*mmap_int8_view, ids, dst.data()));
  }
  const double heap_row_ns = MedianOf(heap_ns);
  const double float_row_ns = MedianOf(mmap_float_ns);
  const double int8_row_ns = MedianOf(mmap_int8_ns);

  // --- Fused vs unfused int8 gather+dequant ---------------------------------
  // Unfused is the pre-fusion serving shape: copy the mapped int8 row into a
  // staging buffer, then run the scalar store::DequantizeRow pass over it,
  // one row at a time with no lookahead. Fused is what the model's gather
  // path now does: one batched GatherRows call per request, which amortizes
  // the per-row costs, keeps a prefetch window of upcoming rows in flight,
  // and converts straight from the mapped bytes with the SIMD dequant core.
  // Same ids, bit-identical output.
  std::vector<int8_t> q_table(static_cast<size_t>(rows * cols));
  std::vector<float> q_scales(static_cast<size_t>(rows));
  for (int64_t r = 0; r < rows; ++r) {
    q_scales[static_cast<size_t>(r)] = store::QuantizeRow(
        table.data() + r * cols, cols, q_table.data() + r * cols);
  }
  std::vector<int8_t> staging(static_cast<size_t>(cols));
  const auto time_unfused_ns = [&] {
    const auto begin = std::chrono::steady_clock::now();
    float acc = 0.0f;
    for (const int64_t id : ids) {
      std::memcpy(staging.data(), q_table.data() + id * cols,
                  static_cast<size_t>(cols));
      store::DequantizeRow(staging.data(), cols,
                           q_scales[static_cast<size_t>(id)], dst.data());
      acc += dst[0] + dst[static_cast<size_t>(cols - 1)];
    }
    g_sink = acc;
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - begin)
               .count() /
           static_cast<double>(ids.size());
  };
  // One request gathers tens to a few hundred rows at a time in serving, so
  // time GatherRows over request-sized chunks rather than one giant batch.
  constexpr size_t kChunk = 64;
  std::vector<float> chunk_dst(kChunk * static_cast<size_t>(cols));
  const auto time_fused_ns = [&] {
    const auto begin = std::chrono::steady_clock::now();
    float acc = 0.0f;
    for (size_t i = 0; i < ids.size(); i += kChunk) {
      const size_t n = std::min(kChunk, ids.size() - i);
      mmap_int8_view->GatherRows(ids.data() + i, static_cast<int64_t>(n),
                                 chunk_dst.data());
      acc += chunk_dst[0] +
             chunk_dst[(n - 1) * static_cast<size_t>(cols) +
                       static_cast<size_t>(cols - 1)];
    }
    g_sink = acc;
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - begin)
               .count() /
           static_cast<double>(ids.size());
  };
  time_unfused_ns();  // warm up
  time_fused_ns();
  // Both paths are reported as the best of several interleaved reps: the
  // fused path is latency-hiding-bound, so on a shared host a noisy
  // neighbor inflates any single rep; the minimum is the stable estimate of
  // the path's own cost (the reps span enough wall time to catch a quiet
  // slice, and both paths get the same treatment).
  std::vector<double> unfused_ns, fused_ns;
  for (int r = 0; r < 15; ++r) {
    unfused_ns.push_back(time_unfused_ns());
    fused_ns.push_back(time_fused_ns());
  }
  const double unfused_row_ns = *std::min_element(unfused_ns.begin(),
                                                  unfused_ns.end());
  const double fused_row_ns = *std::min_element(fused_ns.begin(),
                                                fused_ns.end());

  const uint64_t heap_bytes = static_cast<uint64_t>(rows * cols) * sizeof(float);
  const uint64_t float_mapped = float_store.value()->mapped_bytes();
  const uint64_t int8_mapped = int8_store.value()->mapped_bytes();
  const double memory_reduction =
      static_cast<double>(heap_bytes) / static_cast<double>(int8_mapped);
  const double quant_max_abs_error =
      int8_store.value()->FindTable("static")->max_abs_error;

  std::printf("gather ns/row: heap %.1f, mmap-float %.1f, mmap-int8 %.1f\n",
              heap_row_ns, float_row_ns, int8_row_ns);
  std::printf("int8 gather+dequant ns/row: unfused-scalar %.1f, fused-simd %.1f\n",
              unfused_row_ns, fused_row_ns);
  std::printf("resident bytes: heap %llu, mmap-float %llu, mmap-int8 %llu "
              "(%.2fx reduction)\n",
              static_cast<unsigned long long>(heap_bytes),
              static_cast<unsigned long long>(float_mapped),
              static_cast<unsigned long long>(int8_mapped), memory_reduction);

  // --- Hot-set residency: budgeted clock vs unmanaged mmap ------------------
  // Zipf-flavored traffic (90% of gathers hit a head covering 1/16 of the id
  // space, planted mid-table) through the same float store twice. The
  // budgeted run enables the residency manager with a quarter-of-the-table
  // budget and sweeps the popularity clock on a fixed cadence: the clock
  // pins the hot shards, MADV_DONTNEEDs the cold tail and WillGather
  // batch-prefetches re-admitted ranges, so the resident set stays bounded
  // while the cold tail pays demand faults. The unmanaged run is the classic
  // mmap store — nothing evicts, everything touched stays resident, no
  // faults after warm-up. Chunk latency percentiles, the minor-fault delta
  // and the end-of-run mincore estimate quantify the trade: how much
  // cold-fault tail the budget costs, and how much memory it returns.
  const int64_t residency_budget =
      static_cast<int64_t>(float_store.value()->mapped_bytes() / 4);
  std::vector<int64_t> zipf_ids(262144);
  {
    util::Rng zrng(29);
    const int64_t head_start = rows / 2;
    const int64_t head_size = rows / 16;
    for (int64_t& id : zipf_ids) {
      id = zrng.Uniform() < 0.9
               ? head_start + zrng.UniformInt(0, head_size - 1)
               : zrng.UniformInt(0, rows - 1);
    }
  }
  constexpr size_t kResChunk = 64;
  constexpr size_t kSweepEveryChunks = 256;
  struct ResidencyRun {
    double p50_ns_row = 0.0;
    double p99_ns_row = 0.0;
    long minor_faults = 0;
    int64_t resident_bytes = 0;
    store::ResidencyStats stats;
  };
  const auto run_residency = [&](bool budgeted) {
    auto st = store::EmbeddingStore::Open(work_dir + "/float_store");
    BOOTLEG_CHECK(st.ok());
    store::ResidencyOptions ro;
    ro.start_sweeper = false;  // swept manually for a deterministic schedule
    std::shared_ptr<store::StoreView> view;
    if (budgeted) {
      ro.budget_bytes = residency_budget;
      st.value()->EnableResidency(ro);
      view = st.value()->View("static").value();
    } else {
      // View opened before residency is enabled, so no hooks are wired and
      // nothing ever evicts; the manager below is only the mincore probe.
      view = st.value()->View("static").value();
      ro.budget_bytes = static_cast<int64_t>(float_mapped) * 2;
      st.value()->EnableResidency(ro);
    }
    std::vector<float> out(kResChunk * static_cast<size_t>(cols));
    std::vector<double> chunk_ns;
    chunk_ns.reserve(zipf_ids.size() / kResChunk);
    struct rusage ru0, ru1;
    getrusage(RUSAGE_SELF, &ru0);
    float acc = 0.0f;
    size_t chunk = 0;
    for (size_t i = 0; i + kResChunk <= zipf_ids.size();
         i += kResChunk, ++chunk) {
      if (budgeted && chunk % kSweepEveryChunks == 0) {
        st.value()->residency()->SweepOnce();
      }
      const auto b = std::chrono::steady_clock::now();
      view->GatherRows(zipf_ids.data() + i, static_cast<int64_t>(kResChunk),
                       out.data());
      chunk_ns.push_back(std::chrono::duration<double, std::nano>(
                             std::chrono::steady_clock::now() - b)
                             .count());
      acc += out[0];
    }
    g_sink = acc;
    getrusage(RUSAGE_SELF, &ru1);
    std::sort(chunk_ns.begin(), chunk_ns.end());
    // Demand admissions accumulate pages between sweeps; the budget is
    // enforced at sweep cadence, so sample residency at an enforcement
    // point (right after a sweep), not mid-interval.
    if (budgeted) st.value()->residency()->SweepOnce();
    ResidencyRun run;
    run.p50_ns_row = chunk_ns[chunk_ns.size() / 2] / kResChunk;
    run.p99_ns_row = chunk_ns[chunk_ns.size() * 99 / 100] / kResChunk;
    run.minor_faults = ru1.ru_minflt - ru0.ru_minflt;
    run.resident_bytes = st.value()->residency()->EstimateResidentBytes();
    run.stats = st.value()->residency_stats();
    return run;
  };
  const ResidencyRun res_unmanaged = run_residency(false);
  const ResidencyRun res_managed = run_residency(true);
  std::printf(
      "residency (budget %lld of %llu mapped bytes): chunk gather p50/p99 "
      "ns/row budgeted %.1f/%.1f vs unmanaged %.1f/%.1f; resident bytes %lld "
      "vs %lld; minor faults %ld vs %ld; budgeted cold_faults %lld, "
      "evictions %lld, prefetch_issued %lld over %lld sweeps\n",
      static_cast<long long>(residency_budget),
      static_cast<unsigned long long>(float_mapped), res_managed.p50_ns_row,
      res_managed.p99_ns_row, res_unmanaged.p50_ns_row,
      res_unmanaged.p99_ns_row,
      static_cast<long long>(res_managed.resident_bytes),
      static_cast<long long>(res_unmanaged.resident_bytes),
      res_managed.minor_faults, res_unmanaged.minor_faults,
      static_cast<long long>(res_managed.stats.cold_faults),
      static_cast<long long>(res_managed.stats.evictions),
      static_cast<long long>(res_managed.stats.prefetch_issued),
      static_cast<long long>(res_managed.stats.sweeps));

  // --- End-to-end serve path on a synthetic world ---------------------------
  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_pages = 60;
  const data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  const data::Corpus corpus = generator.Generate();
  const std::string data_dir = work_dir + "/world";
  std::filesystem::create_directories(data_dir);
  BOOTLEG_CHECK(world.kb.Save(data_dir + "/kb.bin").ok());
  BOOTLEG_CHECK(world.candidates.Save(data_dir + "/candidates.bin").ok());
  BOOTLEG_CHECK(world.vocab.Save(data_dir + "/vocab.bin").ok());
  core::BootlegConfig model_config;
  model_config.encoder.max_len = 32;
  core::BootlegModel model(&world.kb, world.vocab.size(), model_config, 123);
  BOOTLEG_CHECK(model.store().Save(data_dir + "/model.bin").ok());

  model.PrepareFrozenInference();
  const tensor::Tensor& frozen = model.frozen_static();
  for (const auto& [name, dtype] :
       std::vector<std::pair<std::string, store::Dtype>>{
           {"serve_float", store::Dtype::kFloat32},
           {"serve_int8", store::Dtype::kInt8}}) {
    store::WriteOptions wo;
    wo.shards = 4;
    wo.dtype = dtype;
    BOOTLEG_CHECK(store::WriteStore(work_dir + "/" + name,
                                    {{"static", frozen.data(), frozen.size(0),
                                      frozen.size(1)}},
                                    wo)
                      .ok());
  }

  const auto make_engine = [&](const std::string& store_dir,
                               const std::string& backend_spec) {
    serve::EngineOptions options;
    options.data_dir = data_dir;
    options.model_path = data_dir + "/model.bin";
    options.store_dir = store_dir;
    options.backend = backend_spec;
    auto engine = serve::InferenceEngine::Create(options);
    BOOTLEG_CHECK_MSG(engine.ok(), engine.status().ToString());
    return std::move(engine.value());
  };
  auto heap_engine = make_engine("", "ref");
  auto float_engine = make_engine(work_dir + "/serve_float", "ref");
  auto int8_engine = make_engine(work_dir + "/serve_int8", "ref");

  data::ExampleBuilder builder(&world.candidates, &world.vocab);
  data::ExampleOptions example_options;
  example_options.include_weak_labels = false;
  const std::vector<data::SentenceExample> examples =
      builder.BuildAll(corpus.dev, example_options);
  std::vector<const data::SentenceExample*> batch;
  for (const data::SentenceExample& ex : examples) batch.push_back(&ex);
  BOOTLEG_CHECK(!batch.empty());

  core::BootlegModel::InferenceScratch scratch;
  TimePredictPass(heap_engine.get(), batch, &scratch);  // warmup
  TimePredictPass(float_engine.get(), batch, &scratch);
  TimePredictPass(int8_engine.get(), batch, &scratch);
  std::vector<double> heap_s, float_s, int8_s;
  for (int r = 0; r < 9; ++r) {
    heap_s.push_back(TimePredictPass(heap_engine.get(), batch, &scratch));
    float_s.push_back(TimePredictPass(float_engine.get(), batch, &scratch));
    int8_s.push_back(TimePredictPass(int8_engine.get(), batch, &scratch));
  }
  const double heap_pass = MedianOf(heap_s);
  const double float_overhead_pct = (MedianOf(float_s) / heap_pass - 1.0) * 100.0;
  const double int8_overhead_pct = (MedianOf(int8_s) / heap_pass - 1.0) * 100.0;

  std::printf("serve pass (%zu sentences): heap %.1f ms, float-store %+.2f%%, "
              "int8-store %+.2f%%\n",
              batch.size(), heap_pass * 1e3, float_overhead_pct,
              int8_overhead_pct);

  // --- Per-backend serve path (heap store, backend varies) ------------------
  auto simd_engine = make_engine("", "simd");
  auto q8_engine = make_engine("", "simd_q8");
  TimePredictPass(simd_engine.get(), batch, &scratch);  // warmup
  TimePredictPass(q8_engine.get(), batch, &scratch);
  std::vector<double> simd_s, q8_s;
  for (int r = 0; r < 9; ++r) {
    simd_s.push_back(TimePredictPass(simd_engine.get(), batch, &scratch));
    q8_s.push_back(TimePredictPass(q8_engine.get(), batch, &scratch));
  }
  const double simd_pass = MedianOf(simd_s);
  const double q8_pass = MedianOf(q8_s);
  std::printf("backend serve pass: ref %.1f ms, simd %.1f ms (%.2fx), "
              "simd_q8 %.1f ms (%.2fx)\n",
              heap_pass * 1e3, simd_pass * 1e3, heap_pass / simd_pass,
              q8_pass * 1e3, heap_pass / q8_pass);

  // --- Live index mutation: delta publish + time to first correct serve -----
  const std::string delta_root = work_dir + "/delta_root";
  std::filesystem::create_directories(delta_root);
  std::filesystem::copy(work_dir + "/serve_float", delta_root + "/gen_000001",
                        std::filesystem::copy_options::recursive);
  auto delta_engine = make_engine(delta_root, "ref");

  // Borrow an existing entity's structural signals — the paper's unseen-tail
  // premise: a new entity arrives with known types and relations.
  const kb::Entity* sibling = &world.kb.entity(0);
  for (int64_t i = 0; i < world.kb.num_entities(); ++i) {
    if (!world.kb.entity(i).types.empty() &&
        !world.kb.entity(i).relations.empty()) {
      sibling = &world.kb.entity(i);
      break;
    }
  }
  constexpr int kAdds = 8;
  std::vector<double> add_ms, first_serve_ms;
  for (int i = 0; i < kAdds; ++i) {
    const std::string title = "deltabench" + std::to_string(i);
    index::DeltaEntity spec;
    spec.title = title;
    spec.coarse = sibling->coarse_type;
    spec.gender = sibling->gender;
    spec.types = sibling->types;
    for (const kb::RelationId r : sibling->relations) {
      spec.triples.push_back({r, sibling->id});
    }
    spec.aliases.push_back({title, 0.5f});

    const auto t0 = std::chrono::steady_clock::now();
    BOOTLEG_CHECK(delta_engine->AddEntityLive(std::move(spec)).ok());
    const auto t1 = std::chrono::steady_clock::now();
    const kb::EntityId want = delta_engine->kb().FindByTitle(title);
    bool correct = false;
    while (!correct) {
      const auto served =
          delta_engine->Disambiguate({title + " appeared"}, &scratch);
      for (const serve::ServedMention& m : served[0].mentions) {
        correct |= m.alias == title && m.entity == want;
      }
    }
    const auto t2 = std::chrono::steady_clock::now();
    add_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    first_serve_ms.push_back(
        std::chrono::duration<double, std::milli>(t2 - t0).count());
  }
  const double add_median_ms = MedianOf(add_ms);
  const double first_serve_median_ms = MedianOf(first_serve_ms);

  // Gather cost through the chain tip (kAdds generations deep), then through
  // the compacted flat generation — content-referenced parent shards mean
  // both read the same mapped bytes for pre-existing rows.
  const int64_t chain_depth = delta_engine->store_generation();
  std::vector<float> chain_dst(static_cast<size_t>(frozen.size(1)));
  std::vector<int64_t> chain_ids(100000);
  {
    util::Rng rng(77);
    for (int64_t& id : chain_ids) {
      id = static_cast<int64_t>(rng.Uniform() * frozen.size(0));
    }
  }
  auto chain_view = delta_engine->entity_store()->View("static");
  BOOTLEG_CHECK(chain_view.ok());
  TimeGatherNs(*chain_view.value(), chain_ids, chain_dst.data());  // warmup
  const double chain_gather_ns =
      TimeGatherNs(*chain_view.value(), chain_ids, chain_dst.data());

  const auto c0 = std::chrono::steady_clock::now();
  index::CompactResult compacted;
  BOOTLEG_CHECK(index::Compact(delta_root, &compacted).ok());
  const double compact_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - c0)
                                .count();
  BOOTLEG_CHECK(delta_engine->Reload().ok());
  auto flat_view = delta_engine->entity_store()->View("static");
  BOOTLEG_CHECK(flat_view.ok());
  TimeGatherNs(*flat_view.value(), chain_ids, chain_dst.data());  // warmup
  const double flat_gather_ns =
      TimeGatherNs(*flat_view.value(), chain_ids, chain_dst.data());

  std::printf(
      "store delta (%d live adds): add_entity %.2f ms, first correct serve "
      "%.2f ms, chain depth %lld gather %.1f ns/row, compact %.1f ms, "
      "compacted gather %.1f ns/row\n",
      kAdds, add_median_ms, first_serve_median_ms,
      static_cast<long long>(chain_depth), chain_gather_ns, compact_ms,
      flat_gather_ns);

  // --- Export ---------------------------------------------------------------
  char buf[4096];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"benchmark\": \"bootleg embedding store\",\n"
      "  \"gather_table\": {\"rows\": %lld, \"cols\": %lld, \"lookups\": %zu},\n"
      "  \"gather_ns_per_row\": {\"heap\": %.2f, \"mmap_float\": %.2f, "
      "\"mmap_int8\": %.2f},\n"
      "  \"int8_gather_fusion_ns_per_row\": {\"unfused_scalar\": %.2f, "
      "\"fused_simd\": %.2f},\n"
      "  \"resident_bytes\": {\"heap_float\": %llu, \"mmap_float\": %llu, "
      "\"mmap_int8\": %llu},\n"
      "  \"int8_memory_reduction_x\": %.3f,\n"
      "  \"int8_quant_max_abs_error\": %.6g,\n"
      "  \"residency\": {\"budget_bytes\": %lld, \"chunk_rows\": %zu,\n"
      "    \"budgeted\": {\"p50_ns_per_row\": %.2f, \"p99_ns_per_row\": %.2f, "
      "\"resident_bytes\": %lld, \"minor_faults\": %ld, \"cold_faults\": %lld, "
      "\"evictions\": %lld, \"prefetch_issued\": %lld, \"sweeps\": %lld},\n"
      "    \"unmanaged\": {\"p50_ns_per_row\": %.2f, \"p99_ns_per_row\": %.2f, "
      "\"resident_bytes\": %lld, \"minor_faults\": %ld}},\n"
      "  \"serve_pass\": {\"sentences\": %zu, \"heap_ms\": %.3f, "
      "\"float_store_overhead_pct\": %.3f, \"int8_store_overhead_pct\": %.3f},\n"
      "  \"backend_serve_pass\": {\"ref_ms\": %.3f, \"simd_ms\": %.3f, "
      "\"simd_q8_ms\": %.3f, \"simd_speedup_x\": %.3f},\n"
      "  \"store_delta\": {\"adds\": %d, \"add_entity_ms\": %.3f, "
      "\"time_to_first_correct_serve_ms\": %.3f, \"chain_depth\": %lld, "
      "\"chain_gather_ns_per_row\": %.2f, \"compact_ms\": %.3f, "
      "\"compacted_gather_ns_per_row\": %.2f}\n"
      "}\n",
      static_cast<long long>(rows), static_cast<long long>(cols), ids.size(),
      heap_row_ns, float_row_ns, int8_row_ns, unfused_row_ns, fused_row_ns,
      static_cast<unsigned long long>(heap_bytes),
      static_cast<unsigned long long>(float_mapped),
      static_cast<unsigned long long>(int8_mapped), memory_reduction,
      quant_max_abs_error, static_cast<long long>(residency_budget), kResChunk,
      res_managed.p50_ns_row, res_managed.p99_ns_row,
      static_cast<long long>(res_managed.resident_bytes),
      res_managed.minor_faults,
      static_cast<long long>(res_managed.stats.cold_faults),
      static_cast<long long>(res_managed.stats.evictions),
      static_cast<long long>(res_managed.stats.prefetch_issued),
      static_cast<long long>(res_managed.stats.sweeps),
      res_unmanaged.p50_ns_row, res_unmanaged.p99_ns_row,
      static_cast<long long>(res_unmanaged.resident_bytes),
      res_unmanaged.minor_faults, batch.size(), heap_pass * 1e3,
      float_overhead_pct,
      int8_overhead_pct, heap_pass * 1e3, simd_pass * 1e3, q8_pass * 1e3,
      heap_pass / simd_pass, kAdds, add_median_ms, first_serve_median_ms,
      static_cast<long long>(chain_depth), chain_gather_ns, compact_ms,
      flat_gather_ns);
  std::ofstream f(out_path);
  f << buf;
  f.close();
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}

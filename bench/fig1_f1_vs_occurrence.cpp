// Figure 1 (right): F1 versus the number of times an entity was seen in
// training, Bootleg vs the NED-Base baseline, across unseen / tail / torso /
// head. The paper's curve shows NED-Base needing on-the-order-of 100
// occurrences to reach 60 F1 while Bootleg is strong from zero occurrences.
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

namespace {

/// Occurrence-count bins for the x-axis.
struct Bin {
  const char* label;
  int64_t lo;
  int64_t hi;  // inclusive
};

const Bin kBins[] = {
    {"0 (unseen)", 0, 0}, {"1-2", 1, 2},     {"3-10", 3, 10},
    {"11-50", 11, 50},    {"51-200", 51, 200}, {">200", 201, INT64_MAX},
};

}  // namespace

int main() {
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  const core::TrainOptions train = harness::DefaultTrainOptions();
  auto ned_base = harness::TrainNedBase(&env, "ned_base", train);
  auto bootleg = harness::TrainBootleg(
      &env, {"bootleg_full", harness::DefaultBootlegConfig(), train, 7});

  harness::BucketResult rb =
      harness::EvaluateBuckets(bootleg.get(), env, env.corpus.dev);
  harness::BucketResult rn =
      harness::EvaluateBuckets(ned_base.get(), env, env.corpus.dev);

  std::printf("\n=== Figure 1 (right): F1 vs #times entity seen in training ===\n");
  std::printf("%-14s %12s %12s %10s\n", "occurrences", "NED-Base", "Bootleg", "n");
  for (const Bin& bin : kBins) {
    auto in_bin = [&](const eval::PredictionRecord& r) {
      const int64_t c = env.counts.Count(r.gold);
      return c >= bin.lo && c <= bin.hi;
    };
    const eval::Prf pn = rn.results.Filtered(in_bin);
    const eval::Prf pb = rb.results.Filtered(in_bin);
    std::printf("%-14s %12.1f %12.1f %10lld\n", bin.label, pn.f1(), pb.f1(),
                static_cast<long long>(pb.total));
  }
  std::printf(
      "\nShape check (paper): Bootleg is far above NED-Base at low "
      "occurrence counts;\nthe curves converge for frequently-seen "
      "entities.\n");
  return 0;
}

// Robustness benchmark: quantifies the accuracy cliff as input noise grows,
// the overshadowed-entity slice (skewed-prior aliases whose gold is not the
// head candidate), and what the char-fallback encoder hardening buys back
// under typo noise.
//
//   robust_bench [--out PATH]
//
// Reported:
//   - overall / tail / overshadowed F1 on the clean dev split, plus the
//     prior-follow diagnostic (how often the model just picks the prior
//     argmax — overall vs. on the overshadowed slice)
//   - one row per noise rate in {0.05, 0.1, 0.2, 0.3}: overall and
//     overshadowed F1 with the stock encoder and with --char_fallback
//     (typo-index recovery of single-edit OOV tokens)
//
// Noise is deterministic (fixed seed, per-sentence RNG), so these numbers
// are reproducible bit-for-bit run to run.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "robust/robust_eval.h"
#include "util/logging.h"

using namespace bootleg;  // NOLINT

namespace {

struct NoiseRow {
  double rate = 0.0;
  eval::Prf all, overshadowed;
};

std::vector<NoiseRow> Rows(const robust::RobustReport& report) {
  std::vector<NoiseRow> rows;
  rows.push_back({0.0, report.clean.Overall(),
                  robust::OvershadowedPrf(report.clean)});
  for (const robust::NoisySlice& slice : report.noisy) {
    rows.push_back({slice.rate, slice.results.Overall(),
                    robust::OvershadowedPrf(slice.results)});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_robust.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  auto model = harness::TrainBootleg(
      &env, {"bootleg_full", harness::DefaultBootlegConfig(),
             harness::DefaultTrainOptions(), 7});

  const robust::OvershadowedIndex overshadowed =
      robust::OvershadowedIndex::Build(env.world.candidates);
  const std::vector<double> rates = {0.05, 0.1, 0.2, 0.3};
  const uint64_t seed = 1234;

  data::ExampleOptions options;
  const robust::RobustReport stock = robust::RunRobustEvaluation(
      model.get(), env.corpus.dev, *env.builder, options, env.counts,
      overshadowed, rates, seed);

  // Same noise, hardened encoder: the typo index recovers single-edit OOV
  // tokens instead of mapping them to <unk>.
  env.world.vocab.BuildTypoIndex();
  options.char_fallback = true;
  const robust::RobustReport hardened = robust::RunRobustEvaluation(
      model.get(), env.corpus.dev, *env.builder, options, env.counts,
      overshadowed, rates, seed);

  const std::vector<NoiseRow> stock_rows = Rows(stock);
  const std::vector<NoiseRow> hard_rows = Rows(hardened);
  BOOTLEG_CHECK(stock_rows.size() == hard_rows.size());

  const eval::Prf clean_tail =
      stock.clean.ByBucket(data::PopularityBucket::kTail);
  const double follow_all = robust::PriorFollowRate(stock.clean);
  const double follow_over = robust::PriorFollowRate(
      stock.clean,
      [](const eval::PredictionRecord& r) { return r.overshadowed; });

  std::printf("\n=== Robustness: noise cliff & overshadowed slice ===\n");
  std::printf("skewed aliases: %lld   overshadowed eligible: %lld\n",
              static_cast<long long>(overshadowed.num_skewed_aliases()),
              static_cast<long long>(stock_rows[0].overshadowed.total));
  std::printf("clean: all %.1f  tail %.1f  overshadowed %.1f\n",
              stock_rows[0].all.f1(), clean_tail.f1(),
              stock_rows[0].overshadowed.f1());
  std::printf("prior-follow: all %.1f%%  overshadowed %.1f%%\n\n", follow_all,
              follow_over);
  std::printf("%-10s %10s %10s | %12s %12s\n", "rate", "all", "overshad",
              "all(+fb)", "overshad(+fb)");
  for (size_t i = 0; i < stock_rows.size(); ++i) {
    std::printf("%-10.2f %10.1f %10.1f | %12.1f %12.1f\n", stock_rows[i].rate,
                stock_rows[i].all.f1(), stock_rows[i].overshadowed.f1(),
                hard_rows[i].all.f1(), hard_rows[i].overshadowed.f1());
  }

  std::string json = "{\n  \"benchmark\": \"bootleg robustness\",\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"noise_seed\": %llu,\n"
                "  \"skewed_aliases\": %lld,\n"
                "  \"overshadowed_eligible\": %lld,\n"
                "  \"clean\": {\"f1_all\": %.2f, \"f1_tail\": %.2f, "
                "\"f1_overshadowed\": %.2f},\n"
                "  \"prior_follow_pct\": {\"all\": %.2f, "
                "\"overshadowed\": %.2f},\n",
                static_cast<unsigned long long>(seed),
                static_cast<long long>(overshadowed.num_skewed_aliases()),
                static_cast<long long>(stock_rows[0].overshadowed.total),
                stock_rows[0].all.f1(), clean_tail.f1(),
                stock_rows[0].overshadowed.f1(), follow_all, follow_over);
  json += buf;
  json += "  \"noise_cliff\": [\n";
  for (size_t i = 0; i < stock_rows.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"rate\": %.2f, \"f1_all\": %.2f, "
                  "\"f1_overshadowed\": %.2f, \"f1_all_char_fallback\": %.2f, "
                  "\"f1_overshadowed_char_fallback\": %.2f}%s\n",
                  stock_rows[i].rate, stock_rows[i].all.f1(),
                  stock_rows[i].overshadowed.f1(), hard_rows[i].all.f1(),
                  hard_rows[i].overshadowed.f1(),
                  i + 1 == stock_rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ]\n}\n";

  std::ofstream f(out_path);
  f << json;
  f.close();
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

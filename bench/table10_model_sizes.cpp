// Table 10 (Appendix B): model sizes of the five ablation models, split into
// embedding size (entity/type/relation tables) and network size (dense
// parameters; the word encoder is excluded as the paper excludes BERT).
//
// Paper reference (MB): NED-Base 5186+4, Bootleg 5201+39, Ent-only 5186+35,
// Type-only 13+38, KG-only 1+34 — the key shape is that Type-only and
// KG-only are orders of magnitude smaller because the entity table dominates.
#include <cstdio>

#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  // Sizes are a static property: models are constructed, not trained.
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  const core::BootlegConfig base = harness::DefaultBootlegConfig();

  auto print_row = [](const char* name, double emb_kb, double net_kb) {
    std::printf("%-22s %16.1f %16.1f %16.1f\n", name, emb_kb, net_kb,
                emb_kb + net_kb);
  };
  std::printf("\n=== Table 10: model sizes (KB) ===\n");
  std::printf("%-22s %16s %16s %16s\n", "Model", "Embedding", "Network", "Total");

  {
    baseline::NedBaseConfig config;
    config.encoder.max_len = 32;
    baseline::NedBaseModel m(env.world.kb.num_entities(),
                             env.world.vocab.size(), config, 1);
    print_row("NED-Base", m.EmbeddingBytes() / 1024.0, m.NetworkBytes() / 1024.0);
  }
  struct Arm {
    const char* name;
    core::BootlegConfig config;
  };
  const Arm arms[] = {
      {"Bootleg", base},
      {"Ent-only", core::BootlegConfig::EntOnly(base)},
      {"Type-only", core::BootlegConfig::TypeOnly(base)},
      {"KG-only", core::BootlegConfig::KgOnly(base)},
  };
  for (const Arm& arm : arms) {
    core::BootlegModel m(&env.world.kb, env.world.vocab.size(), arm.config, 1);
    const core::BootlegModel::SizeReport size = m.Size();
    print_row(arm.name, size.embedding_bytes / 1024.0,
              size.network_bytes / 1024.0);
  }
  std::printf(
      "\nShape check (paper): the entity table dominates NED-Base / Bootleg "
      "/ Ent-only;\nType-only and KG-only achieve tail quality at a tiny "
      "fraction of the space\n(the paper's 3.3x-at-1%%-space result).\n");
  return 0;
}

// Table 5: the industry (Overton) use case — relative F1 of a factoid-query
// disambiguation system with Bootleg embeddings over the same system without
// them, in four synthetic "languages" (independently seeded corpora with
// increasing tail weight), overall and on tail entities.
//
// Paper reference (relative F1): English 1.08/1.08, Spanish 1.03/1.17,
// French 1.02/1.05, German 1.00/1.03 — always ≥ 1.0, with the tail gaining
// at least as much as the whole.
#include <cstdio>

#include "downstream/overton.h"
#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

namespace {

struct Language {
  const char* name;
  uint64_t seed;
  double entity_zipf_s;  // tail weight varies by language
};

struct RelativeF1 {
  double all = 0.0;
  double tail = 0.0;
};

RelativeF1 RunLanguage(const Language& lang) {
  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.seed = lang.seed;
  config.entity_zipf_s = lang.entity_zipf_s;
  config.num_pages = 500;
  harness::Environment env = harness::BuildEnvironment(config);

  core::TrainOptions train = harness::DefaultTrainOptions();
  train.epochs = 6;

  // Pretrained Bootleg supplying frozen contextual embeddings.
  auto bootleg = harness::TrainBootleg(
      &env, {"overton_bootleg", harness::DefaultBootlegConfig(), train, 7});

  // The in-house system, without and with Bootleg embeddings.
  downstream::OvertonModel without(env.world.kb.num_entities(),
                                   env.world.vocab.size(), nullptr, 11);
  downstream::OvertonModel with(env.world.kb.num_entities(),
                                env.world.vocab.size(), bootleg.get(), 11);
  core::Trainable<downstream::OvertonModel> t1(&without);
  core::Trainable<downstream::OvertonModel> t2(&with);
  core::Train(&t1, env.train_examples, train);
  core::Train(&t2, env.train_examples, train);

  harness::BucketResult r_without =
      harness::EvaluateBuckets(&without, env, env.corpus.dev);
  harness::BucketResult r_with =
      harness::EvaluateBuckets(&with, env, env.corpus.dev);

  auto tail_f1 = [](const harness::BucketResult& r) {
    // "Tail slices which include unseen entities" (paper Sec. 4.3).
    eval::Prf combined;
    combined.correct = r.tail.correct + r.unseen.correct;
    combined.predicted = r.tail.predicted + r.unseen.predicted;
    combined.total = r.tail.total + r.unseen.total;
    return combined.f1();
  };
  RelativeF1 rel;
  rel.all = r_without.all.f1() == 0.0 ? 0.0 : r_with.all.f1() / r_without.all.f1();
  rel.tail = tail_f1(r_without) == 0.0 ? 0.0 : tail_f1(r_with) / tail_f1(r_without);
  return rel;
}

}  // namespace

int main() {
  const Language languages[] = {
      {"English", 2100, 0.9},
      {"Spanish", 2200, 1.0},
      {"French", 2300, 1.05},
      {"German", 2400, 1.1},
  };

  RelativeF1 results[4];
  for (int i = 0; i < 4; ++i) results[i] = RunLanguage(languages[i]);

  std::printf("\n=== Table 5: relative F1 of Overton-sim with Bootleg "
              "embeddings over without ===\n");
  std::printf("%-14s", "Validation Set");
  for (const Language& lang : languages) std::printf(" %10s", lang.name);
  std::printf("\n%-14s", "All Entities");
  for (int i = 0; i < 4; ++i) std::printf(" %10.2f", results[i].all);
  std::printf("\n%-14s", "Tail Entities");
  for (int i = 0; i < 4; ++i) std::printf(" %10.2f", results[i].tail);
  std::printf(
      "\n\nShape check (paper): relative quality ≥ 1.0 in every language, "
      "with the tail\nlift at least as large as the overall lift.\n");
  return 0;
}

// Closed-loop serving benchmark: fixed fleets of synchronous clients drive
// the micro-batching service end to end (request assembly, candidate cache,
// batched frozen-model inference) and report throughput plus latency
// percentiles per scenario. The headline comparison is batching ON vs OFF at
// the same concurrency — the dynamic micro-batcher's whole value claim.
//
//   serve_bench [--out PATH] [--requests N] [--pages N]
//
// Scenarios:
//   single_request   pre-serving baseline: one autograd-tape Predict at a time
//                    — exactly what a request cost before this subsystem
//   engine_c1_b1     frozen engine, 1 client, batching off (max_batch=1)
//   engine_c8_b1     8 clients, batching off — queueing without coalescing
//   engine_c8_b8     8 clients, dynamic micro-batching (max_batch=8)
//   engine_c16_b16   16 clients, deeper coalescing
//
// The headline ratio is micro-batched serving at concurrency 8 over the
// single-request baseline. On a single-core host the forward is compute
// bound and results must stay byte-identical to the serial evaluator, so
// batching-on-vs-off contributes coalesced queueing overhead only; the bulk
// of the win is the frozen no-tape engine. Both ratios are reported.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "data/generator.h"
#include "data/mention_extractor.h"
#include "data/world.h"
#include "serve/batcher.h"
#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "util/logging.h"
#include "util/thread_pool.h"

using namespace bootleg;  // NOLINT

namespace {

struct ScenarioResult {
  std::string name;
  int concurrency = 1;
  int max_batch = 1;
  int64_t requests = 0;
  double seconds = 0.0;
  double throughput_sps = 0.0;
  double mean_batch = 0.0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
};

/// Runs `concurrency` closed-loop clients, each issuing `per_client`
/// requests through `issue` (which blocks until its request completes).
ScenarioResult RunClosedLoopOnce(
    const std::string& name, int concurrency, int max_batch, int64_t per_client,
    const std::vector<std::string>& texts,
    const std::function<void(const std::string&)>& issue,
    const serve::ServerCounters* counters) {
  serve::LatencyHistogram latency;
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(concurrency));
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      for (int64_t i = 0; i < per_client; ++i) {
        const std::string& text =
            texts[static_cast<size_t>(c + i) % texts.size()];
        const auto start = std::chrono::steady_clock::now();
        issue(text);
        latency.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  ScenarioResult r;
  r.name = name;
  r.concurrency = concurrency;
  r.max_batch = max_batch;
  r.requests = per_client * concurrency;
  r.seconds = seconds;
  r.throughput_sps = static_cast<double>(r.requests) / seconds;
  r.mean_batch = counters == nullptr ? 1.0 : counters->MeanBatchSize();
  r.p50_us = latency.PercentileUs(0.50);
  r.p95_us = latency.PercentileUs(0.95);
  r.p99_us = latency.PercentileUs(0.99);
  return r;
}

/// Repeats a scenario and keeps the median-throughput repetition, so a
/// scheduler hiccup on a shared box does not distort the checked-in numbers.
ScenarioResult RunClosedLoop(
    const std::string& name, int concurrency, int max_batch, int64_t per_client,
    const std::vector<std::string>& texts,
    const std::function<void(const std::string&)>& issue,
    const serve::ServerCounters* counters, int repeats = 3) {
  std::vector<ScenarioResult> runs;
  for (int i = 0; i < repeats; ++i) {
    runs.push_back(RunClosedLoopOnce(name, concurrency, max_batch, per_client,
                                     texts, issue, counters));
  }
  std::sort(runs.begin(), runs.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) {
              return a.throughput_sps < b.throughput_sps;
            });
  const ScenarioResult& r = runs[runs.size() / 2];
  std::printf("%-14s c=%d b=%d  %7.1f sent/s  p50=%lldus p95=%lldus p99=%lldus"
              "  mean_batch=%.2f\n",
              r.name.c_str(), r.concurrency, r.max_batch, r.throughput_sps,
              static_cast<long long>(r.p50_us), static_cast<long long>(r.p95_us),
              static_cast<long long>(r.p99_us), r.mean_batch);
  return r;
}

ScenarioResult RunEngineScenario(serve::InferenceEngine* engine,
                                 const std::string& name, int concurrency,
                                 int max_batch, int64_t per_client,
                                 const std::vector<std::string>& texts) {
  serve::ServerCounters counters;
  serve::BatcherOptions options;
  options.max_batch = max_batch;
  options.max_wait_us = max_batch > 1 ? 500 : 0;
  options.max_queue = 1024;
  options.workers = 1;
  core::BootlegModel::InferenceScratch scratch;
  serve::MicroBatcher batcher(
      options,
      [&](const std::vector<std::string>& batch, int) {
        return engine->Disambiguate(batch, &scratch);
      },
      nullptr, &counters);
  // Warm the candidate cache and code paths outside the timed window.
  for (const std::string& t : texts) batcher.Submit(t).get();

  ScenarioResult result = RunClosedLoop(
      name, concurrency, max_batch, per_client, texts,
      [&](const std::string& text) { batcher.Submit(text).get(); }, &counters);
  batcher.Shutdown();
  return result;
}

void AppendScenarioJson(std::string* out, const ScenarioResult& r, bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"name\": \"%s\", \"concurrency\": %d, \"max_batch\": %d, "
      "\"requests\": %lld, \"seconds\": %.4f, \"throughput_sps\": %.2f, "
      "\"mean_batch\": %.3f, \"p50_us\": %lld, \"p95_us\": %lld, "
      "\"p99_us\": %lld}%s\n",
      r.name.c_str(), r.concurrency, r.max_batch,
      static_cast<long long>(r.requests), r.seconds, r.throughput_sps,
      r.mean_batch, static_cast<long long>(r.p50_us),
      static_cast<long long>(r.p95_us), static_cast<long long>(r.p99_us),
      last ? "" : ",");
  *out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  int64_t per_client = 250;
  int64_t pages = 200;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--out") out_path = argv[i + 1];
    if (key == "--requests") per_client = std::atoll(argv[i + 1]);
    if (key == "--pages") pages = std::atoll(argv[i + 1]);
  }

  // Single-core serving: all parallelism in this benchmark comes from the
  // micro-batcher's compute coalescing, which is exactly the claim under test.
  util::ThreadPool::ResetGlobal(util::ThreadPool::EnvThreads());

  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_pages = pages;
  const data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  const data::Corpus corpus = generator.Generate();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bootleg_serve_bench").string();
  std::filesystem::create_directories(dir);
  BOOTLEG_CHECK(world.kb.Save(dir + "/kb.bin").ok());
  BOOTLEG_CHECK(world.candidates.Save(dir + "/candidates.bin").ok());
  BOOTLEG_CHECK(world.vocab.Save(dir + "/vocab.bin").ok());

  core::BootlegConfig model_config;
  model_config.encoder.max_len = 32;
  core::BootlegModel model(&world.kb, world.vocab.size(), model_config,
                           /*seed=*/42);
  BOOTLEG_CHECK(model.store().Save(dir + "/model.bin").ok());

  serve::EngineOptions engine_options;
  engine_options.data_dir = dir;
  engine_options.model_path = dir + "/model.bin";
  auto engine_or = serve::InferenceEngine::Create(engine_options);
  BOOTLEG_CHECK_MSG(engine_or.ok(), engine_or.status().ToString());
  serve::InferenceEngine& engine = *engine_or.value();

  // A fixed pool of real dev sentences: a skewed alias mix like the queries
  // the cache is built for, shared by every scenario.
  std::vector<std::string> texts;
  for (const data::Sentence& s : corpus.dev) {
    if (s.mentions.empty()) continue;
    std::string text;
    for (const std::string& t : s.tokens) {
      if (!text.empty()) text += ' ';
      text += t;
    }
    texts.push_back(std::move(text));
    if (texts.size() == 64) break;
  }
  BOOTLEG_CHECK(!texts.empty());

  std::vector<ScenarioResult> results;

  // Pre-serving baseline: the batch-experiment path (autograd tape, no
  // frozen features, no batching) invoked per request.
  {
    data::MentionExtractor extractor(&world.candidates);
    for (const std::string& t : texts) {  // warmup
      model.Predict(extractor.BuildExample(world.vocab, t));
    }
    results.push_back(RunClosedLoop(
        "single_request", 1, 1, per_client, texts,
        [&](const std::string& text) {
          model.Predict(extractor.BuildExample(world.vocab, text));
        },
        nullptr));
  }

  results.push_back(
      RunEngineScenario(&engine, "engine_c1_b1", 1, 1, per_client, texts));
  results.push_back(
      RunEngineScenario(&engine, "engine_c8_b1", 8, 1, per_client, texts));
  results.push_back(
      RunEngineScenario(&engine, "engine_c8_b8", 8, 8, per_client, texts));
  results.push_back(
      RunEngineScenario(&engine, "engine_c16_b16", 16, 16, per_client, texts));

  const double single_request = results[0].throughput_sps;
  const double unbatched_c8 = results[2].throughput_sps;
  const double batched_c8 = results[3].throughput_sps;
  const double engine_c1 = results[1].throughput_sps;

  std::string json = "{\n  \"benchmark\": \"bootleg_serve closed-loop\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"pages\": %lld,\n  \"texts\": %zu,\n",
                static_cast<long long>(pages), texts.size());
  json += buf;
  json += "  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendScenarioJson(&json, results[i], i + 1 == results.size());
  }
  json += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"speedup_batched_c8_vs_single_request\": %.3f,\n",
                batched_c8 / single_request);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"speedup_batching_on_vs_off_at_c8\": %.3f,\n",
                batched_c8 / unbatched_c8);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"speedup_frozen_engine_vs_tape_at_c1\": %.3f\n",
                engine_c1 / single_request);
  json += buf;
  json += "}\n";

  std::ofstream f(out_path);
  f << json;
  f.close();
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("batched c8 vs single-request baseline: %.2fx "
              "(batching on/off at c8: %.2fx; frozen engine vs tape at c1: "
              "%.2fx)\n",
              batched_c8 / single_request, batched_c8 / unbatched_c8,
              engine_c1 / single_request);
  return 0;
}

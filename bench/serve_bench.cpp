// Closed-loop serving benchmark: fixed fleets of synchronous clients drive
// the micro-batching service end to end (request assembly, candidate cache,
// batched frozen-model inference) and report throughput plus latency
// percentiles per scenario. The headline comparison is batching ON vs OFF at
// the same concurrency — the dynamic micro-batcher's whole value claim.
//
//   serve_bench [--out PATH] [--requests N] [--pages N] [--net_only 1]
//
// --net_only skips the engine_* scenarios (useful when iterating on the
// transport; the emitted JSON then contains only net_* rows).
//
// Scenarios:
//   single_request   pre-serving baseline: one autograd-tape Predict at a time
//                    — exactly what a request cost before this subsystem
//   engine_c1_b1     frozen engine, 1 client, batching off (max_batch=1)
//   engine_c8_b1     8 clients, batching off — queueing without coalescing
//   engine_c8_b8     8 clients, dynamic micro-batching (max_batch=8)
//   engine_c16_b16   16 clients, deeper coalescing
//   net_c16/64/256/1024  full TCP stack through the epoll front end: N
//                    closed-loop connections (window 1) multiplexed by a
//                    handful of epoll-based client threads, ~8192 requests
//                    total per scenario. Demonstrates that throughput holds
//                    (or improves, via deeper batches) as connection count
//                    grows far past the old thread-per-connection limit.
//
// The headline ratio is micro-batched serving at concurrency 8 over the
// single-request baseline. On a single-core host the forward is compute
// bound and results must stay byte-identical to the serial evaluator, so
// batching-on-vs-off contributes coalesced queueing overhead only; the bulk
// of the win is the frozen no-tape engine. Both ratios are reported.
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "core/model.h"
#include "data/generator.h"
#include "data/mention_extractor.h"
#include "data/world.h"
#include "serve/batcher.h"
#include "serve/inference_engine.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "util/logging.h"
#include "util/thread_pool.h"

using namespace bootleg;  // NOLINT

namespace {

struct ScenarioResult {
  std::string name;
  int concurrency = 1;
  int max_batch = 1;
  int64_t requests = 0;
  double seconds = 0.0;
  double throughput_sps = 0.0;
  double mean_batch = 0.0;
  int64_t p50_us = 0;
  int64_t p95_us = 0;
  int64_t p99_us = 0;
};

/// Runs `concurrency` closed-loop clients, each issuing `per_client`
/// requests through `issue` (which blocks until its request completes).
ScenarioResult RunClosedLoopOnce(
    const std::string& name, int concurrency, int max_batch, int64_t per_client,
    const std::vector<std::string>& texts,
    const std::function<void(const std::string&)>& issue,
    const serve::ServerCounters* counters) {
  serve::LatencyHistogram latency;
  const auto begin = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(concurrency));
  for (int c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      for (int64_t i = 0; i < per_client; ++i) {
        const std::string& text =
            texts[static_cast<size_t>(c + i) % texts.size()];
        const auto start = std::chrono::steady_clock::now();
        issue(text);
        latency.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();

  ScenarioResult r;
  r.name = name;
  r.concurrency = concurrency;
  r.max_batch = max_batch;
  r.requests = per_client * concurrency;
  r.seconds = seconds;
  r.throughput_sps = static_cast<double>(r.requests) / seconds;
  r.mean_batch = counters == nullptr ? 1.0 : counters->MeanBatchSize();
  r.p50_us = latency.PercentileUs(0.50);
  r.p95_us = latency.PercentileUs(0.95);
  r.p99_us = latency.PercentileUs(0.99);
  return r;
}

void PrintScenario(const ScenarioResult& r) {
  std::printf("%-14s c=%d b=%d  %7.1f sent/s  p50=%lldus p95=%lldus p99=%lldus"
              "  mean_batch=%.2f\n",
              r.name.c_str(), r.concurrency, r.max_batch, r.throughput_sps,
              static_cast<long long>(r.p50_us), static_cast<long long>(r.p95_us),
              static_cast<long long>(r.p99_us), r.mean_batch);
}

/// Keeps the median-throughput repetition, so a scheduler hiccup on a shared
/// box does not distort the checked-in numbers.
ScenarioResult MedianRun(const std::function<ScenarioResult()>& run,
                         int repeats = 3) {
  std::vector<ScenarioResult> runs;
  for (int i = 0; i < repeats; ++i) runs.push_back(run());
  std::sort(runs.begin(), runs.end(),
            [](const ScenarioResult& a, const ScenarioResult& b) {
              return a.throughput_sps < b.throughput_sps;
            });
  ScenarioResult r = runs[runs.size() / 2];
  PrintScenario(r);
  return r;
}

ScenarioResult RunClosedLoop(
    const std::string& name, int concurrency, int max_batch, int64_t per_client,
    const std::vector<std::string>& texts,
    const std::function<void(const std::string&)>& issue,
    const serve::ServerCounters* counters) {
  return MedianRun([&] {
    return RunClosedLoopOnce(name, concurrency, max_batch, per_client, texts,
                             issue, counters);
  });
}

ScenarioResult RunEngineScenario(serve::InferenceEngine* engine,
                                 const std::string& name, int concurrency,
                                 int max_batch, int64_t per_client,
                                 const std::vector<std::string>& texts) {
  serve::ServerCounters counters;
  serve::BatcherOptions options;
  options.max_batch = max_batch;
  options.max_wait_us = max_batch > 1 ? 500 : 0;
  options.max_queue = 1024;
  options.workers = 1;
  core::BootlegModel::InferenceScratch scratch;
  serve::MicroBatcher batcher(
      options,
      [&](const std::vector<serve::BatchItem>& batch, int) {
        return engine->DisambiguateBatch(batch, &scratch);
      },
      nullptr, &counters);
  // Warm the candidate cache and code paths outside the timed window.
  for (const std::string& t : texts) batcher.Submit(t).get();

  ScenarioResult result = RunClosedLoop(
      name, concurrency, max_batch, per_client, texts,
      [&](const std::string& text) { batcher.Submit(text).get(); }, &counters);
  batcher.Shutdown();
  return result;
}

// ---- TCP front-end scenarios ----------------------------------------------
//
// The engine_* scenarios call the batcher directly; the net_* scenarios go
// through the whole stack — epoll front end, newline framing, JSON protocol,
// admission control — from real sockets. Client side: each scenario's N
// connections are multiplexed over a few epoll-based driver threads, each
// connection closed-loop with a window of one request, so N is connection
// concurrency (the thing the old thread-per-connection server could not
// scale) rather than client thread count.

// Server-side micro-batch cap for the net_* scenarios. Deliberately larger
// than net_c16's 16 outstanding requests: a window-1 closed loop can never
// queue more requests than it has connections, so batch depth — and with it
// per-batch fixed costs — scales with connection concurrency. That is the
// production claim these rows exist to demonstrate.
constexpr int kNetMaxBatch = 64;

int ConnectLoopbackPort(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  BOOTLEG_CHECK(fd >= 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  BOOTLEG_CHECK(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) ==
      0);
  int flag = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  return fd;
}

/// Writes the whole line to a non-blocking socket, polling POLLOUT on EAGAIN.
/// Requests are ~100 bytes, so this almost never actually waits.
void SendLine(int fd, const std::string& line) {
  size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      pollfd p{fd, POLLOUT, 0};
      ::poll(&p, 1, 1000);
      continue;
    }
    BOOTLEG_CHECK_MSG(false, "net bench: send failed");
  }
}

/// Drives `conn_count` closed-loop connections to completion from one
/// thread: epoll for readable sockets (O(ready) per wakeup, so client-side
/// overhead stays flat from 16 to 1024 connections), record a latency
/// sample per reply line, immediately issue the connection's next request.
///
/// Connection setup and teardown happen outside the timed window — the
/// thread connects its share, signals `ready`, and spins on `go` before
/// sending the first byte; `*end_out` is stamped after the last reply,
/// before any fd is closed. Otherwise per-scenario setup cost (1024
/// connects at net_c1024 vs 16 at net_c16) would masquerade as a
/// request-throughput difference.
void DriveConns(int port, const std::vector<std::string>& lines,
                int64_t per_conn, int conn_count, int id_base,
                serve::LatencyHistogram* latency, std::atomic<int64_t>* errors,
                std::atomic<int>* ready, const std::atomic<bool>* go,
                std::chrono::steady_clock::time_point* end_out) {
  struct NetConn {
    int fd = -1;
    int64_t sent = 0;
    int64_t recvd = 0;
    std::string rbuf;
    std::chrono::steady_clock::time_point t0;
  };
  std::vector<NetConn> conns(static_cast<size_t>(conn_count));
  const int ep = ::epoll_create1(0);
  BOOTLEG_CHECK(ep >= 0);
  for (int i = 0; i < conn_count; ++i) {
    NetConn& c = conns[static_cast<size_t>(i)];
    c.fd = ConnectLoopbackPort(port);
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered; rbuf is drained on each wakeup
    ev.data.u32 = static_cast<uint32_t>(i);
    BOOTLEG_CHECK(::epoll_ctl(ep, EPOLL_CTL_ADD, c.fd, &ev) == 0);
  }
  auto next_line = [&](const NetConn& c, int i) -> const std::string& {
    return lines[static_cast<size_t>(id_base + i + c.sent) % lines.size()];
  };
  ready->fetch_add(1, std::memory_order_release);
  while (!go->load(std::memory_order_acquire)) std::this_thread::yield();
  for (int i = 0; i < conn_count; ++i) {
    NetConn& c = conns[static_cast<size_t>(i)];
    c.t0 = std::chrono::steady_clock::now();
    SendLine(c.fd, next_line(c, i));
    ++c.sent;
  }

  std::vector<epoll_event> events(static_cast<size_t>(conn_count));
  int live = conn_count;
  char buf[16384];
  while (live > 0) {
    const int ready = ::epoll_wait(ep, events.data(), conn_count, 10000);
    if (ready < 0 && errno == EINTR) continue;
    BOOTLEG_CHECK_MSG(ready > 0, "net bench: client stalled for 10s");
    for (int e = 0; e < ready; ++e) {
      NetConn& c = conns[events[static_cast<size_t>(e)].data.u32];
      if (c.recvd >= per_conn) continue;
      for (;;) {
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          c.rbuf.append(buf, static_cast<size_t>(n));
          if (n < static_cast<ssize_t>(sizeof(buf))) break;
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        BOOTLEG_CHECK_MSG(false, "net bench: server closed the connection");
      }
      size_t start = 0;
      size_t nl;
      while ((nl = c.rbuf.find('\n', start)) != std::string::npos) {
        if (c.rbuf.find("\"ok\":false", start) < nl ||
            c.rbuf.find("\"ok\": false", start) < nl) {
          errors->fetch_add(1, std::memory_order_relaxed);
        }
        latency->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - c.t0)
                            .count());
        ++c.recvd;
        start = nl + 1;
        if (c.recvd == per_conn) {
          --live;
          ::epoll_ctl(ep, EPOLL_CTL_DEL, c.fd, nullptr);
          break;
        }
        c.t0 = std::chrono::steady_clock::now();
        SendLine(c.fd, next_line(c, events[static_cast<size_t>(e)].data.u32));
        ++c.sent;
      }
      c.rbuf.erase(0, start);
    }
  }
  *end_out = std::chrono::steady_clock::now();
  ::close(ep);
  for (NetConn& c : conns) ::close(c.fd);
}

ScenarioResult RunNetClientsOnce(const std::string& name, int conns,
                                 int64_t per_conn, int port,
                                 const std::vector<std::string>& lines,
                                 const serve::ServerCounters* counters) {
  serve::LatencyHistogram latency;
  std::atomic<int64_t> errors{0};
  const int thread_count = conns >= 4 ? 2 : 1;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::chrono::steady_clock::time_point> ends(
      static_cast<size_t>(thread_count));
  std::vector<std::thread> drivers;
  int assigned = 0;
  for (int t = 0; t < thread_count; ++t) {
    const int share = conns / thread_count + (t < conns % thread_count ? 1 : 0);
    const int id_base = assigned;
    assigned += share;
    drivers.emplace_back([&, t, share, id_base] {
      DriveConns(port, lines, per_conn, share, id_base, &latency, &errors,
                 &ready, &go, &ends[static_cast<size_t>(t)]);
    });
  }
  while (ready.load(std::memory_order_acquire) < thread_count) {
    std::this_thread::yield();
  }
  const auto begin = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : drivers) t.join();
  const auto end = *std::max_element(ends.begin(), ends.end());
  const double seconds = std::chrono::duration<double>(end - begin).count();
  BOOTLEG_CHECK_MSG(errors.load() == 0,
                    "net bench: got structured error replies");

  ScenarioResult r;
  r.name = name;
  r.concurrency = conns;
  r.max_batch = kNetMaxBatch;
  r.requests = per_conn * conns;
  r.seconds = seconds;
  r.throughput_sps = static_cast<double>(r.requests) / seconds;
  r.mean_batch = counters->MeanBatchSize();
  r.p50_us = latency.PercentileUs(0.50);
  r.p95_us = latency.PercentileUs(0.95);
  r.p99_us = latency.PercentileUs(0.99);
  return r;
}

/// One TCP scenario: fresh batcher + server (so mean_batch is per-scenario),
/// a warmup pass over one connection, then the median of three timed drives.
ScenarioResult RunNetScenario(serve::InferenceEngine* engine,
                              const std::string& name, int conns,
                              int64_t per_conn,
                              const std::vector<std::string>& lines) {
  serve::ServerCounters counters;
  serve::LatencyHistogram server_latency;
  serve::BatcherOptions options;
  options.max_batch = kNetMaxBatch;
  options.max_wait_us = 200;
  options.max_queue = 2048;
  options.workers = 1;
  core::BootlegModel::InferenceScratch scratch;
  serve::MicroBatcher batcher(
      options,
      [&](const std::vector<serve::BatchItem>& batch, int) {
        return engine->DisambiguateBatch(batch, &scratch);
      },
      nullptr, &counters);
  serve::ServerOptions server_options;
  server_options.io_threads = 2;
  serve::Server server(engine, &batcher, &counters, &server_latency,
                       server_options);
  BOOTLEG_CHECK(server.Start(0).ok());
  {  // Warmup: one connection, one pass over the request pool.
    serve::LatencyHistogram warmup_latency;
    std::atomic<int64_t> warmup_errors{0};
    std::atomic<int> warmup_ready{0};
    std::atomic<bool> warmup_go{true};
    std::chrono::steady_clock::time_point warmup_end;
    DriveConns(server.port(), lines, static_cast<int64_t>(lines.size()), 1, 0,
               &warmup_latency, &warmup_errors, &warmup_ready, &warmup_go,
               &warmup_end);
    BOOTLEG_CHECK(warmup_errors.load() == 0);
  }
  ScenarioResult result = MedianRun([&] {
    return RunNetClientsOnce(name, conns, per_conn, server.port(), lines,
                             &counters);
  });
  server.Stop();
  batcher.Shutdown();
  return result;
}

std::string DisambiguateLine(const std::string& text) {
  std::string escaped;
  for (const char ch : text) {
    if (ch == '"' || ch == '\\') escaped += '\\';
    escaped += ch;
  }
  return "{\"op\":\"disambiguate\",\"text\":\"" + escaped + "\"}\n";
}

void AppendScenarioJson(std::string* out, const ScenarioResult& r, bool last) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"name\": \"%s\", \"concurrency\": %d, \"max_batch\": %d, "
      "\"requests\": %lld, \"seconds\": %.4f, \"throughput_sps\": %.2f, "
      "\"mean_batch\": %.3f, \"p50_us\": %lld, \"p95_us\": %lld, "
      "\"p99_us\": %lld}%s\n",
      r.name.c_str(), r.concurrency, r.max_batch,
      static_cast<long long>(r.requests), r.seconds, r.throughput_sps,
      r.mean_batch, static_cast<long long>(r.p50_us),
      static_cast<long long>(r.p95_us), static_cast<long long>(r.p99_us),
      last ? "" : ",");
  *out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_serve.json";
  int64_t per_client = 250;
  int64_t pages = 200;
  bool net_only = false;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    if (key == "--out") out_path = argv[i + 1];
    if (key == "--requests") per_client = std::atoll(argv[i + 1]);
    if (key == "--pages") pages = std::atoll(argv[i + 1]);
    if (key == "--net_only") net_only = std::atoi(argv[i + 1]) != 0;
  }

  // Single-core serving: all parallelism in this benchmark comes from the
  // micro-batcher's compute coalescing, which is exactly the claim under test.
  util::ThreadPool::ResetGlobal(util::ThreadPool::EnvThreads());

  data::SynthConfig config = data::SynthConfig::MicroScale();
  config.num_pages = pages;
  const data::SynthWorld world = data::BuildWorld(config);
  data::CorpusGenerator generator(&world);
  const data::Corpus corpus = generator.Generate();

  const std::string dir =
      (std::filesystem::temp_directory_path() / "bootleg_serve_bench").string();
  std::filesystem::create_directories(dir);
  BOOTLEG_CHECK(world.kb.Save(dir + "/kb.bin").ok());
  BOOTLEG_CHECK(world.candidates.Save(dir + "/candidates.bin").ok());
  BOOTLEG_CHECK(world.vocab.Save(dir + "/vocab.bin").ok());

  core::BootlegConfig model_config;
  model_config.encoder.max_len = 32;
  core::BootlegModel model(&world.kb, world.vocab.size(), model_config,
                           /*seed=*/42);
  BOOTLEG_CHECK(model.store().Save(dir + "/model.bin").ok());

  serve::EngineOptions engine_options;
  engine_options.data_dir = dir;
  engine_options.model_path = dir + "/model.bin";
  auto engine_or = serve::InferenceEngine::Create(engine_options);
  BOOTLEG_CHECK_MSG(engine_or.ok(), engine_or.status().ToString());
  serve::InferenceEngine& engine = *engine_or.value();

  // A fixed pool of real dev sentences: a skewed alias mix like the queries
  // the cache is built for, shared by every scenario.
  std::vector<std::string> texts;
  for (const data::Sentence& s : corpus.dev) {
    if (s.mentions.empty()) continue;
    std::string text;
    for (const std::string& t : s.tokens) {
      if (!text.empty()) text += ' ';
      text += t;
    }
    texts.push_back(std::move(text));
    if (texts.size() == 64) break;
  }
  BOOTLEG_CHECK(!texts.empty());

  std::vector<ScenarioResult> results;

  if (!net_only) {
    // Pre-serving baseline: the batch-experiment path (autograd tape, no
    // frozen features, no batching) invoked per request.
    data::MentionExtractor extractor(&world.candidates);
    for (const std::string& t : texts) {  // warmup
      model.Predict(extractor.BuildExample(world.vocab, t));
    }
    results.push_back(RunClosedLoop(
        "single_request", 1, 1, per_client, texts,
        [&](const std::string& text) {
          model.Predict(extractor.BuildExample(world.vocab, text));
        },
        nullptr));

    results.push_back(
        RunEngineScenario(&engine, "engine_c1_b1", 1, 1, per_client, texts));
    results.push_back(
        RunEngineScenario(&engine, "engine_c8_b1", 8, 1, per_client, texts));
    results.push_back(
        RunEngineScenario(&engine, "engine_c8_b8", 8, 8, per_client, texts));
    results.push_back(
        RunEngineScenario(&engine, "engine_c16_b16", 16, 16, per_client,
                          texts));
  }

  // Full-stack TCP scenarios: ~8192 requests each, connection counts far
  // beyond what the old thread-per-connection transport could carry.
  std::vector<std::string> lines;
  lines.reserve(texts.size());
  for (const std::string& t : texts) lines.push_back(DisambiguateLine(t));
  results.push_back(RunNetScenario(&engine, "net_c16", 16, 512, lines));
  const ScenarioResult net_c16 = results.back();
  results.push_back(RunNetScenario(&engine, "net_c64", 64, 128, lines));
  results.push_back(RunNetScenario(&engine, "net_c256", 256, 32, lines));
  const ScenarioResult net_c256 = results.back();
  results.push_back(RunNetScenario(&engine, "net_c1024", 1024, 8, lines));

  std::string json = "{\n  \"benchmark\": \"bootleg_serve closed-loop\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"pages\": %lld,\n  \"texts\": %zu,\n",
                static_cast<long long>(pages), texts.size());
  json += buf;
  json += "  \"scenarios\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    AppendScenarioJson(&json, results[i], i + 1 == results.size());
  }
  json += "  ],\n";
  if (!net_only) {
    const double single_request = results[0].throughput_sps;
    const double engine_c1 = results[1].throughput_sps;
    const double unbatched_c8 = results[2].throughput_sps;
    const double batched_c8 = results[3].throughput_sps;
    std::snprintf(buf, sizeof(buf),
                  "  \"speedup_batched_c8_vs_single_request\": %.3f,\n",
                  batched_c8 / single_request);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"speedup_batching_on_vs_off_at_c8\": %.3f,\n",
                  batched_c8 / unbatched_c8);
    json += buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"speedup_frozen_engine_vs_tape_at_c1\": %.3f,\n",
                  engine_c1 / single_request);
    json += buf;
    std::printf("batched c8 vs single-request baseline: %.2fx "
                "(batching on/off at c8: %.2fx; frozen engine vs tape at c1: "
                "%.2fx)\n",
                batched_c8 / single_request, batched_c8 / unbatched_c8,
                engine_c1 / single_request);
  }
  std::snprintf(buf, sizeof(buf),
                "  \"net_throughput_c256_vs_c16\": %.3f\n",
                net_c256.throughput_sps / net_c16.throughput_sps);
  json += buf;
  json += "}\n";

  std::ofstream f(out_path);
  f << json;
  f.close();
  std::printf("wrote %s\n", out_path.c_str());
  std::printf("net front end: c256 vs c16 throughput: %.2fx\n",
              net_c256.throughput_sps / net_c16.throughput_sps);
  return 0;
}

// Table 1: precision / recall / F1 on the three NED benchmark suites —
// KORE50-like (hard, ambiguity-maximal sentences), RSS500-like (news-style
// single mentions), and AIDA-like (documents, encoded as "title [SEP]
// sentence" with benchmark-model fine-tuning on the suite's train split).
//
// The Bootleg row uses the paper's benchmark model: fixed 80% regularization,
// the sentence co-occurrence KG2Ent module, and the title-embedding entity
// feature (Appendix B). The alias-prior model stands in for earlier
// published systems; NED-Base is the neural baseline.
#include <cstdio>

#include "baseline/prior_model.h"
#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

namespace {

void PrintPrf(const char* model, const eval::Prf& prf) {
  std::printf("    %-22s %10.1f %10.1f %10.1f\n", model, prf.precision(),
              prf.recall(), prf.f1());
}

eval::Prf Bench(eval::NedScorer* model, const harness::Environment& env,
                const std::vector<data::Sentence>& suite, bool prepend_title) {
  data::ExampleOptions options;
  options.prepend_title = prepend_title;
  eval::ResultSet results =
      eval::RunEvaluation(model, suite, *env.builder, options, env.counts);
  return results.Benchmark();
}

}  // namespace

int main() {
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  const core::TrainOptions train = harness::DefaultTrainOptions();

  // The benchmark-model extras of Appendix B. The paper's benchmark model
  // uses a fixed 80% mask because it "did not hurt benchmark performance"
  // at Wikipedia scale; at this scale it does, so the benchmark model keeps
  // the inverse-popularity scheme (deviation noted in EXPERIMENTS.md).
  core::BootlegConfig bench_config = harness::DefaultBootlegConfig();
  bench_config.use_cooccurrence_kg = true;
  bench_config.use_title_feature = true;

  auto prior = std::make_unique<baseline::PriorModel>();
  auto ned_base = harness::TrainNedBase(&env, "ned_base", train);
  auto bootleg = harness::TrainBootleg(&env, {"bootleg_bench", bench_config,
                                              train, 7});

  data::CorpusGenerator generator(&env.world);
  const std::vector<data::Sentence> kore = generator.GenerateKoreLike(150);
  const std::vector<data::Sentence> rss = generator.GenerateRssLike(500);
  const std::vector<data::Sentence> aida_train =
      generator.GenerateAidaLike(/*num_docs=*/120, /*sentences_per_doc=*/4);
  const std::vector<data::Sentence> aida_test =
      generator.GenerateAidaLike(/*num_docs=*/80, /*sentences_per_doc=*/4);

  std::printf("\n=== Table 1: benchmark P / R / F1 ===\n");

  std::printf("  KORE50-like (%zu mentions)\n", kore.size());
  PrintPrf("Alias prior", Bench(prior.get(), env, kore, false));
  PrintPrf("NED-Base", Bench(ned_base.get(), env, kore, false));
  PrintPrf("Bootleg", Bench(bootleg.get(), env, kore, false));

  std::printf("  RSS500-like (%zu sentences)\n", rss.size());
  PrintPrf("Alias prior", Bench(prior.get(), env, rss, false));
  PrintPrf("NED-Base", Bench(ned_base.get(), env, rss, false));
  PrintPrf("Bootleg", Bench(bootleg.get(), env, rss, false));

  // AIDA: fine-tune the benchmark model on the suite's train split with the
  // document encoding (title [SEP] sentence), as the paper fine-tunes on
  // AIDA CoNLL-YAGO.
  std::printf("  AIDA-like (%zu test sentences, fine-tuned, title+[SEP])\n",
              aida_test.size());
  PrintPrf("Alias prior", Bench(prior.get(), env, aida_test, true));
  PrintPrf("NED-Base", Bench(ned_base.get(), env, aida_test, true));
  {
    data::ExampleOptions ft_options;
    ft_options.prepend_title = true;
    const std::vector<data::SentenceExample> ft_examples =
        env.builder->BuildAll(aida_train, ft_options);
    core::TrainOptions ft = train;
    ft.epochs = 2;
    ft.lr = 3e-4f;  // scaled analogue of the paper's 7e-5 fine-tuning rate
    core::Trainable<core::BootlegModel> trainable(bootleg.get());
    core::Train(&trainable, ft_examples, ft);
    PrintPrf("Bootleg (fine-tuned)", Bench(bootleg.get(), env, aida_test, true));
  }

  std::printf(
      "\nShape check (paper): Bootleg leads all three suites; the margin is "
      "largest on\nKORE50 (hard sentences) and smallest on AIDA, where all "
      "systems are strong.\n");
  return 0;
}

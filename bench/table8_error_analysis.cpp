// Table 8 + Section 5 error analysis: shares of Bootleg's errors falling in
// the four buckets — granularity (predicted a subclass/superclass of gold),
// numerical (gold title contains a year), multi-hop (gold only 2-hop
// connected to a co-mention), exact match (surface form equals the gold
// title) — with illustrative examples.
#include <cstdio>

#include "eval/error_analysis.h"
#include "harness/experiment.h"

using namespace bootleg;  // NOLINT

int main() {
  harness::Environment env = harness::BuildEnvironment(harness::MainScale());
  auto bootleg = harness::TrainBootleg(
      &env, {"bootleg_full", harness::DefaultBootlegConfig(),
             harness::DefaultTrainOptions(), 7});
  harness::BucketResult r =
      harness::EvaluateBuckets(bootleg.get(), env, env.corpus.dev);

  const std::vector<eval::ErrorBucketReport> reports =
      eval::AnalyzeErrors(env.world.kb, r.results, /*max_examples=*/2);

  std::printf("\n=== Table 8: Bootleg error buckets ===\n");
  std::printf("%-14s %16s %16s\n", "bucket", "% overall errs", "% tail errs");
  for (const eval::ErrorBucketReport& report : reports) {
    std::printf("%-14s %16.0f %16.0f\n", eval::ErrorBucketName(report.bucket),
                report.OverallShare(), report.TailShare());
  }
  std::printf("\n(total errors: overall %lld, tail %lld)\n",
              static_cast<long long>(reports.front().overall_errors),
              static_cast<long long>(reports.front().tail_errors));

  std::printf("\nIllustrative errors per bucket:\n");
  for (const eval::ErrorBucketReport& report : reports) {
    std::printf("  [%s]\n", eval::ErrorBucketName(report.bucket));
    for (const std::string& example : report.examples) {
      std::printf("    %s\n", example.c_str());
    }
    if (report.examples.empty()) std::printf("    (none)\n");
  }

  // The paper also reports the exact-match regression: among examples the
  // baseline gets right and Bootleg gets wrong, how many are exact title
  // matches (the regularization discourages entity-memorized cues).
  auto ned_base =
      harness::TrainNedBase(&env, "ned_base", harness::DefaultTrainOptions());
  harness::BucketResult rb =
      harness::EvaluateBuckets(ned_base.get(), env, env.corpus.dev);
  int64_t base_right_bootleg_wrong = 0;
  int64_t exact_in_those = 0;
  const auto& recs_bootleg = r.results.records();
  const auto& recs_base = rb.results.records();
  for (size_t i = 0; i < recs_bootleg.size() && i < recs_base.size(); ++i) {
    if (!recs_bootleg[i].Eligible()) continue;
    if (recs_base[i].Correct() && !recs_bootleg[i].Correct()) {
      ++base_right_bootleg_wrong;
      if (eval::InErrorBucket(env.world.kb, recs_bootleg[i],
                              eval::ErrorBucket::kExactMatch)) {
        ++exact_in_those;
      }
    }
  }
  std::printf(
      "\nbaseline-right / Bootleg-wrong examples: %lld; exact-title matches "
      "among them: %lld (%.0f%%, paper: 28%%)\n",
      static_cast<long long>(base_right_bootleg_wrong),
      static_cast<long long>(exact_in_those),
      base_right_bootleg_wrong == 0
          ? 0.0
          : 100.0 * exact_in_those / base_right_bootleg_wrong);
  return 0;
}
